//! Replication wire framing: the follower handshake and the
//! primary→follower frame stream. See the crate docs for the layout.
//!
//! Every frame's CRC covers the tag byte *and* the body, so a flipped
//! tag is caught like a flipped payload byte; the handshake carries its
//! own CRC over everything before it. Readers reject unknown magic,
//! versions, and tags by name, and cap body lengths so a corrupted
//! length prefix fails fast instead of allocating gigabytes.

use crate::ReplicaError;
use silkmoth_storage::crc32;
use std::io::{Read, Write};

/// Current replication protocol version. Any change to the handshake
/// or frame layout bumps this; peers reject other versions by name.
pub const PROTOCOL_VERSION: u8 = 1;

/// Magic prefix of the follower handshake ("SilkMoth Replication
/// Stream").
const MAGIC: [u8; 4] = *b"SMRS";

/// Handshake length: magic 4 + version 1 + epoch 8 + applied 8 + crc 4.
const HANDSHAKE_LEN: usize = 25;

/// Frame header length: tag 1 + body_len 4 + crc 4.
const FRAME_HEADER_LEN: usize = 9;

const TAG_ERROR: u8 = 0;
const TAG_HEARTBEAT: u8 = 1;
const TAG_RECORD: u8 = 2;
const TAG_SNAPSHOT: u8 = 3;

/// What a follower sends on connect: where it stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handshake {
    /// The failover epoch the follower's state was applied under.
    pub epoch: u64,
    /// How many updates the follower has applied (its cursor; it wants
    /// record `applied_seq + 1` next).
    pub applied_seq: u64,
}

/// One primary→follower message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// The primary is refusing or aborting the session; the message
    /// says why. The connection closes after this.
    Error(String),
    /// Liveness + lag signal: the primary's committed update count.
    Heartbeat {
        /// Total updates committed on the primary.
        committed_seq: u64,
    },
    /// One replicated update: the raw WAL payload of commit `seq`.
    Record {
        /// This record's update sequence number (1-based).
        seq: u64,
        /// The WAL payload (a wire-encoded update).
        payload: Vec<u8>,
    },
    /// Full-state bootstrap for a follower whose cursor cannot be
    /// resumed. Installing it positions the follower at (`seq`,
    /// `epoch`).
    Snapshot {
        /// The primary's failover epoch.
        epoch: u64,
        /// The update count the snapshot captures.
        seq: u64,
        /// The snapshot in the storage snapshot-file format
        /// (self-validating: own magic, version, and CRC).
        snapshot: Vec<u8>,
    },
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Self::Error(_) => TAG_ERROR,
            Self::Heartbeat { .. } => TAG_HEARTBEAT,
            Self::Record { .. } => TAG_RECORD,
            Self::Snapshot { .. } => TAG_SNAPSHOT,
        }
    }

    fn body(&self) -> Vec<u8> {
        match self {
            Self::Error(msg) => msg.as_bytes().to_vec(),
            Self::Heartbeat { committed_seq } => committed_seq.to_le_bytes().to_vec(),
            Self::Record { seq, payload } => {
                let mut body = Vec::with_capacity(8 + payload.len());
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(payload);
                body
            }
            Self::Snapshot {
                epoch,
                seq,
                snapshot,
            } => {
                let mut body = Vec::with_capacity(16 + snapshot.len());
                body.extend_from_slice(&epoch.to_le_bytes());
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(snapshot);
                body
            }
        }
    }
}

fn u64_at(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

/// Writes the follower handshake.
pub fn write_handshake(io: &mut impl Write, hello: &Handshake) -> Result<(), ReplicaError> {
    let mut buf = Vec::with_capacity(HANDSHAKE_LEN);
    buf.extend_from_slice(&MAGIC);
    buf.push(PROTOCOL_VERSION);
    buf.extend_from_slice(&hello.epoch.to_le_bytes());
    buf.extend_from_slice(&hello.applied_seq.to_le_bytes());
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    io.write_all(&buf)
        .map_err(ReplicaError::io("write handshake"))?;
    io.flush().map_err(ReplicaError::io("flush handshake"))
}

/// Reads and validates a follower handshake. Magic, version, and CRC
/// failures are all named `Frame` errors — the primary answers them
/// with an [`Frame::Error`] before closing.
pub fn read_handshake(io: &mut impl Read) -> Result<Handshake, ReplicaError> {
    let mut buf = [0u8; HANDSHAKE_LEN];
    read_exact(io, &mut buf, "handshake")?;
    if buf[..4] != MAGIC {
        return Err(ReplicaError::Frame(format!(
            "handshake magic {:02x?} is not {:02x?}",
            &buf[..4],
            MAGIC
        )));
    }
    if buf[4] != PROTOCOL_VERSION {
        return Err(ReplicaError::Frame(format!(
            "unknown replication protocol version {} (this build speaks {PROTOCOL_VERSION})",
            buf[4]
        )));
    }
    let stored = u32::from_le_bytes(buf[21..25].try_into().expect("4 bytes"));
    let actual = crc32(&buf[..21]);
    if stored != actual {
        return Err(ReplicaError::Frame(format!(
            "handshake CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(Handshake {
        epoch: u64_at(&buf, 5),
        applied_seq: u64_at(&buf, 13),
    })
}

/// Writes one frame.
pub fn write_frame(io: &mut impl Write, frame: &Frame) -> Result<(), ReplicaError> {
    let tag = frame.tag();
    let body = frame.body();
    let mut crc_input = Vec::with_capacity(1 + body.len());
    crc_input.push(tag);
    crc_input.extend_from_slice(&body);
    let crc = crc32(&crc_input);
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0] = tag;
    header[1..5].copy_from_slice(&(body.len() as u32).to_le_bytes());
    header[5..9].copy_from_slice(&crc.to_le_bytes());
    io.write_all(&header)
        .map_err(ReplicaError::io("write frame header"))?;
    io.write_all(&body)
        .map_err(ReplicaError::io("write frame body"))?;
    io.flush().map_err(ReplicaError::io("flush frame"))
}

/// Reads one frame, rejecting bodies longer than `max_body_len` before
/// allocating. All parse failures are named `Frame` errors; an EOF in
/// the middle of a frame is a named `Io` error (torn stream).
pub fn read_frame(io: &mut impl Read, max_body_len: u32) -> Result<Frame, ReplicaError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    read_exact(io, &mut header, "frame header")?;
    let tag = header[0];
    let body_len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes"));
    let stored_crc = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes"));
    if tag > TAG_SNAPSHOT {
        return Err(ReplicaError::Frame(format!("unknown frame tag {tag}")));
    }
    if body_len > max_body_len {
        return Err(ReplicaError::Frame(format!(
            "frame body of {body_len} bytes exceeds the {max_body_len}-byte cap"
        )));
    }
    let mut body = vec![0u8; body_len as usize];
    read_exact(io, &mut body, "frame body")?;
    let mut crc_input = Vec::with_capacity(1 + body.len());
    crc_input.push(tag);
    crc_input.extend_from_slice(&body);
    let actual = crc32(&crc_input);
    if stored_crc != actual {
        return Err(ReplicaError::Frame(format!(
            "frame CRC mismatch on tag {tag}: stored {stored_crc:#010x}, computed {actual:#010x}"
        )));
    }
    decode_body(tag, body)
}

fn decode_body(tag: u8, body: Vec<u8>) -> Result<Frame, ReplicaError> {
    let need = |n: usize| {
        if body.len() < n {
            Err(ReplicaError::Frame(format!(
                "frame tag {tag} body of {} bytes is shorter than its {n}-byte header",
                body.len()
            )))
        } else {
            Ok(())
        }
    };
    match tag {
        TAG_ERROR => match String::from_utf8(body) {
            Ok(msg) => Ok(Frame::Error(msg)),
            Err(_) => Err(ReplicaError::Frame(
                "error frame message is not UTF-8".to_string(),
            )),
        },
        TAG_HEARTBEAT => {
            if body.len() != 8 {
                return Err(ReplicaError::Frame(format!(
                    "heartbeat body is {} bytes, not 8",
                    body.len()
                )));
            }
            Ok(Frame::Heartbeat {
                committed_seq: u64_at(&body, 0),
            })
        }
        TAG_RECORD => {
            need(8)?;
            Ok(Frame::Record {
                seq: u64_at(&body, 0),
                payload: body[8..].to_vec(),
            })
        }
        TAG_SNAPSHOT => {
            need(16)?;
            Ok(Frame::Snapshot {
                epoch: u64_at(&body, 0),
                seq: u64_at(&body, 8),
                snapshot: body[16..].to_vec(),
            })
        }
        _ => unreachable!("tag range checked by read_frame"),
    }
}

fn read_exact(io: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), ReplicaError> {
    io.read_exact(buf)
        .map_err(ReplicaError::io(format!("read {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(frame: Frame) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let got = read_frame(&mut Cursor::new(&buf), 1 << 20).unwrap();
        assert_eq!(got, frame);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Error("nope".to_string()));
        roundtrip(Frame::Heartbeat { committed_seq: 42 });
        roundtrip(Frame::Record {
            seq: 7,
            payload: vec![1, 2, 3],
        });
        roundtrip(Frame::Record {
            seq: u64::MAX,
            payload: Vec::new(),
        });
        roundtrip(Frame::Snapshot {
            epoch: 3,
            seq: 99,
            snapshot: vec![0; 1000],
        });
    }

    #[test]
    fn handshake_roundtrips() {
        let hello = Handshake {
            epoch: 5,
            applied_seq: 1234,
        };
        let mut buf = Vec::new();
        write_handshake(&mut buf, &hello).unwrap();
        assert_eq!(buf.len(), HANDSHAKE_LEN);
        assert_eq!(read_handshake(&mut Cursor::new(&buf)).unwrap(), hello);
    }

    #[test]
    fn unknown_version_rejected_by_name() {
        let mut buf = Vec::new();
        write_handshake(
            &mut buf,
            &Handshake {
                epoch: 0,
                applied_seq: 0,
            },
        )
        .unwrap();
        buf[4] = 9;
        let err = read_handshake(&mut Cursor::new(&buf)).unwrap_err();
        assert!(
            err.to_string().contains("version 9"),
            "error should name the version: {err}"
        );
    }

    #[test]
    fn unknown_tag_rejected_by_name() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Heartbeat { committed_seq: 1 }).unwrap();
        buf[0] = 200;
        let err = read_frame(&mut Cursor::new(&buf), 1 << 20).unwrap_err();
        assert!(
            err.to_string().contains("tag 200"),
            "error should name the tag: {err}"
        );
    }

    #[test]
    fn oversized_body_rejected_before_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Heartbeat { committed_seq: 1 }).unwrap();
        buf[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&buf), 1 << 20).unwrap_err();
        assert!(
            err.to_string().contains("cap"),
            "error should mention the cap: {err}"
        );
    }

    #[test]
    fn flipped_tag_caught_by_crc() {
        // Flip heartbeat (1) to record (2): still a known tag, but the
        // CRC covers the tag byte, so the frame is rejected.
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Heartbeat { committed_seq: 1 }).unwrap();
        buf[0] = TAG_RECORD;
        let err = read_frame(&mut Cursor::new(&buf), 1 << 20).unwrap_err();
        assert!(
            err.to_string().contains("CRC"),
            "error should be a CRC mismatch: {err}"
        );
    }
}
