//! Primary side of replication: adapt a [`Store`] into a
//! [`ReplicationSource`], stream it to one follower with
//! [`stream_updates`], and accept followers over TCP with
//! [`serve_log`].

use crate::proto::{read_handshake, write_frame, Frame};
use crate::ReplicaError;
use silkmoth_storage::{
    read_wal_payloads, snapshot_bytes, wal_file_path, CommitHook, SnapshotMeta, StorageError,
    Store, StoreEngine, StoreStatus,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Wakes replication streamers at the store's commit point. Install
/// its [`hook`](CommitSignal::hook) with
/// [`Store::set_commit_hook`]; streamers block in
/// [`wait_beyond`](CommitSignal::wait_beyond) instead of polling.
#[derive(Debug, Default)]
pub struct CommitSignal {
    seq: Mutex<u64>,
    cond: Condvar,
}

impl CommitSignal {
    /// A signal starting at sequence 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `seq` updates are now committed and wakes waiters.
    /// Monotonic: stale notifications are ignored.
    pub fn notify(&self, seq: u64) {
        let mut current = self.seq.lock().expect("commit signal poisoned");
        if seq > *current {
            *current = seq;
            self.cond.notify_all();
        }
    }

    /// The highest committed sequence seen so far.
    pub fn current(&self) -> u64 {
        *self.seq.lock().expect("commit signal poisoned")
    }

    /// Seeds the signal with a store's current committed count (call
    /// once before serving, so a signal attached to a non-empty store
    /// doesn't start at 0).
    pub fn seed(&self, seq: u64) {
        self.notify(seq);
    }

    /// Overwrites the counter unconditionally and wakes waiters — for
    /// when the tracked store is *replaced* (a follower installing a
    /// bootstrap snapshot may move to a seq below a diverged cursor).
    /// The caller must ensure no commit hook can fire concurrently
    /// (hold the store's write lock across the replacement).
    pub fn reset(&self, seq: u64) {
        *self.seq.lock().expect("commit signal poisoned") = seq;
        self.cond.notify_all();
    }

    /// Blocks until the committed count exceeds `seen` or `timeout`
    /// elapses; returns the count either way.
    pub fn wait_beyond(&self, seen: u64, timeout: Duration) -> u64 {
        let guard = self.seq.lock().expect("commit signal poisoned");
        let (guard, _) = self
            .cond
            .wait_timeout_while(guard, timeout, |seq| *seq <= seen)
            .expect("commit signal poisoned");
        *guard
    }

    /// A [`CommitHook`] that notifies this signal. The hook only takes
    /// a lock and notifies a condvar — safe at the commit point.
    pub fn hook(self: &Arc<Self>) -> CommitHook {
        let signal = Arc::clone(self);
        CommitHook::new(move |seq| signal.notify(seq))
    }
}

/// What a replication streamer needs from the primary: its position
/// (epoch, committed count), a blocking wait for new commits, raw WAL
/// records after a cursor, and a snapshot for bootstraps.
pub trait ReplicationSource: Send + Sync {
    /// The primary's failover epoch.
    fn epoch(&self) -> u64;

    /// Total updates committed.
    fn committed_seq(&self) -> u64;

    /// Blocks until the committed count exceeds `seen` or `timeout`
    /// elapses; returns the current count.
    fn wait_beyond(&self, seen: u64, timeout: Duration) -> u64;

    /// Raw WAL payloads of records `applied + 1 ..= applied + limit`
    /// (fewer if fewer are committed). `Ok(None)` means the cursor is
    /// not servable from the retained WAL (it predates the current
    /// generation, or lies in the future) — the caller bootstraps with
    /// a snapshot instead.
    fn records_after(
        &self,
        applied: u64,
        limit: usize,
    ) -> Result<Option<Vec<Vec<u8>>>, ReplicaError>;

    /// A full snapshot in the storage snapshot-file format, plus the
    /// `(update_seq, epoch)` it captures.
    fn snapshot(&self) -> Result<(Vec<u8>, u64, u64), ReplicaError>;
}

/// Maps a follower cursor onto a store's current WAL generation and
/// reads the next batch of raw record payloads. `status` and `dir`
/// must come from one consistent read of the store (hold the lock
/// while calling `status()`; the file read itself happens lock-free —
/// committed WAL bytes are append-only, and a generation rotated away
/// mid-read surfaces as `Ok(None)`, i.e. "bootstrap instead").
pub fn store_records_after(
    dir: &Path,
    status: &StoreStatus,
    applied: u64,
    limit: usize,
) -> Result<Option<Vec<Vec<u8>>>, ReplicaError> {
    let base = status.update_seq - status.wal_records;
    if applied < base || applied > status.update_seq {
        return Ok(None);
    }
    let take = ((status.update_seq - applied) as usize).min(limit);
    if take == 0 {
        return Ok(Some(Vec::new()));
    }
    let path = wal_file_path(dir, status.snapshot_seq);
    match read_wal_payloads(&path, status.snapshot_seq, applied - base, take) {
        Ok(payloads) => {
            if payloads.len() < take {
                // The WAL holds fewer intact records than the store
                // says it committed — local corruption, not a race.
                Err(ReplicaError::Storage(StorageError::Corrupt {
                    file: path.display().to_string(),
                    detail: format!(
                        "only {} of {take} committed records after cursor {applied} are intact",
                        payloads.len()
                    ),
                }))
            } else {
                Ok(Some(payloads))
            }
        }
        // Generation rotated away between the status read and the file
        // open: not an error, just no longer servable from the WAL.
        Err(StorageError::Io { source, .. }) if source.kind() == std::io::ErrorKind::NotFound => {
            Ok(None)
        }
        Err(e) => Err(ReplicaError::Storage(e)),
    }
}

/// A [`ReplicationSource`] over a shared [`Store`]. Construction via
/// [`install`](StoreSource::install) wires the store's commit hook to
/// an internal [`CommitSignal`], so streamers learn about commits the
/// moment the WAL append returns.
#[derive(Debug)]
pub struct StoreSource<E: StoreEngine> {
    store: Arc<RwLock<Store<E>>>,
    signal: Arc<CommitSignal>,
}

impl<E: StoreEngine> Clone for StoreSource<E> {
    fn clone(&self) -> Self {
        Self {
            store: Arc::clone(&self.store),
            signal: Arc::clone(&self.signal),
        }
    }
}

impl<E: StoreEngine + Sync> StoreSource<E> {
    /// Wraps `store`, installing a commit hook on it. Replaces any
    /// previously installed hook.
    pub fn install(store: Arc<RwLock<Store<E>>>) -> Self {
        let signal = Arc::new(CommitSignal::new());
        {
            let mut guard = store.write().expect("store lock poisoned");
            signal.seed(guard.status().update_seq);
            guard.set_commit_hook(signal.hook());
        }
        Self { store, signal }
    }

    /// The commit signal streamers block on.
    pub fn signal(&self) -> &Arc<CommitSignal> {
        &self.signal
    }
}

impl<E: StoreEngine + Sync> ReplicationSource for StoreSource<E> {
    fn epoch(&self) -> u64 {
        self.store
            .read()
            .expect("store lock poisoned")
            .status()
            .epoch
    }

    fn committed_seq(&self) -> u64 {
        self.signal.current()
    }

    fn wait_beyond(&self, seen: u64, timeout: Duration) -> u64 {
        self.signal.wait_beyond(seen, timeout)
    }

    fn records_after(
        &self,
        applied: u64,
        limit: usize,
    ) -> Result<Option<Vec<Vec<u8>>>, ReplicaError> {
        let (dir, status) = {
            let guard = self.store.read().expect("store lock poisoned");
            (guard.dir().to_path_buf(), guard.status())
        };
        store_records_after(&dir, &status, applied, limit)
    }

    fn snapshot(&self) -> Result<(Vec<u8>, u64, u64), ReplicaError> {
        let guard = self.store.read().expect("store lock poisoned");
        let status = guard.status();
        let meta = SnapshotMeta {
            seq: status.snapshot_seq,
            update_seq: status.update_seq,
            epoch: status.epoch,
        };
        let bytes = snapshot_bytes(meta, &guard.engine().capture());
        Ok((bytes, status.update_seq, status.epoch))
    }
}

/// Tuning for one follower connection's streamer.
#[derive(Debug, Clone, Copy)]
pub struct StreamerConfig {
    /// Heartbeat interval when the follower is caught up; also bounds
    /// how long a connection thread lingers after a stop request.
    pub heartbeat: Duration,
    /// Max records fetched (and framed) per batch.
    pub batch: usize,
    /// Max frame body accepted from / offered to the peer, in bytes.
    pub max_frame_len: u32,
}

impl Default for StreamerConfig {
    fn default() -> Self {
        Self {
            heartbeat: Duration::from_millis(500),
            batch: 256,
            max_frame_len: 256 << 20,
        }
    }
}

/// Serves one follower connection: reads the handshake, then streams
/// records (or a bootstrap snapshot when the cursor is unservable)
/// until `stop` is set, the follower goes away, or the source's epoch
/// changes under us (promotion elsewhere — the follower must re-handshake).
///
/// A malformed handshake is answered with a best-effort [`Frame::Error`]
/// naming the problem before the error is returned.
pub fn stream_updates(
    source: &dyn ReplicationSource,
    io: &mut (impl Read + Write),
    stop: &AtomicBool,
    cfg: &StreamerConfig,
) -> Result<(), ReplicaError> {
    let hello = match read_handshake(io) {
        Ok(hello) => hello,
        Err(e) => {
            let _ = write_frame(io, &Frame::Error(e.to_string()));
            return Err(e);
        }
    };
    let epoch = source.epoch();
    // A cursor minted under another epoch may index a diverged history,
    // and a cursor of 0 carries no shared-history evidence at all (the
    // primary's seq-0 state is its *initial build*, not necessarily
    // empty). Both go through the bootstrap path, via the unservable
    // sentinel.
    let mut applied = if hello.epoch == epoch && hello.applied_seq > 0 {
        hello.applied_seq
    } else {
        u64::MAX
    };
    let mut committed = source.committed_seq();
    write_frame(
        io,
        &Frame::Heartbeat {
            committed_seq: committed,
        },
    )?;
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        if source.epoch() != epoch {
            let msg = "primary epoch changed; reconnect to re-handshake".to_string();
            let _ = write_frame(io, &Frame::Error(msg.clone()));
            return Err(ReplicaError::Protocol(msg));
        }
        if applied == committed {
            committed = source.wait_beyond(applied, cfg.heartbeat);
            if applied >= committed {
                write_frame(
                    io,
                    &Frame::Heartbeat {
                        committed_seq: committed,
                    },
                )?;
            }
            continue;
        }
        match source.records_after(applied, cfg.batch)? {
            Some(payloads) if !payloads.is_empty() => {
                for payload in payloads {
                    if payload.len() as u64 > u64::from(cfg.max_frame_len) {
                        return Err(ReplicaError::Protocol(format!(
                            "WAL record of {} bytes exceeds the {}-byte frame cap",
                            payload.len(),
                            cfg.max_frame_len
                        )));
                    }
                    applied += 1;
                    write_frame(
                        io,
                        &Frame::Record {
                            seq: applied,
                            payload,
                        },
                    )?;
                }
            }
            // Unservable cursor (too old, foreign epoch, or rotated
            // away mid-read) or an empty batch from a raced rotation:
            // bootstrap.
            _ => {
                let (snapshot, seq, snap_epoch) = source.snapshot()?;
                write_frame(
                    io,
                    &Frame::Snapshot {
                        epoch: snap_epoch,
                        seq,
                        snapshot,
                    },
                )?;
                applied = seq;
            }
        }
        committed = source.committed_seq();
    }
}

/// A running replication log listener: one accept thread, one streamer
/// thread per connected follower.
#[derive(Debug)]
pub struct ReplicaServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    followers: Arc<AtomicUsize>,
}

impl ReplicaServer {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently connected followers.
    pub fn follower_count(&self) -> usize {
        self.followers.load(Ordering::Relaxed)
    }

    /// The shared follower-count gauge, for surfacing in stats.
    pub fn follower_gauge(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.followers)
    }

    /// Stops accepting and asks streamer threads to exit (they notice
    /// within one heartbeat interval).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ReplicaServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and serves `source`'s update log to any follower that
/// connects. Each connection gets its own thread running
/// [`stream_updates`]; handshakes are given 10 s to arrive.
pub fn serve_log<S: ReplicationSource + 'static>(
    source: Arc<S>,
    addr: impl ToSocketAddrs,
    cfg: StreamerConfig,
) -> std::io::Result<ReplicaServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let followers = Arc::new(AtomicUsize::new(0));
    let accept = {
        let stop = Arc::clone(&stop);
        let followers = Arc::clone(&followers);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(mut conn) = conn else { continue };
                let source = Arc::clone(&source);
                let stop = Arc::clone(&stop);
                let followers = Arc::clone(&followers);
                std::thread::spawn(move || {
                    let _ = conn.set_nodelay(true);
                    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
                    let _ = conn.set_write_timeout(Some(Duration::from_secs(30)));
                    followers.fetch_add(1, Ordering::Relaxed);
                    let _ = stream_updates(source.as_ref(), &mut conn, &stop, &cfg);
                    followers.fetch_sub(1, Ordering::Relaxed);
                });
            }
        })
    };
    Ok(ReplicaServer {
        addr,
        stop,
        accept: Some(accept),
        followers,
    })
}
