//! Primary side of replication: adapt a [`Store`] into a
//! [`ReplicationSource`], stream it to one follower with
//! [`stream_updates`], and accept followers over TCP with
//! [`serve_log`].

use crate::proto::{read_handshake, write_frame, Frame};
use crate::ReplicaError;
use silkmoth_storage::{
    list_wal_segments, read_wal_payloads, snapshot_bytes, wal_file_path, CommitHook, SnapshotMeta,
    StorageError, Store, StoreEngine, StoreStatus,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Wakes replication streamers at the store's commit point. Install
/// its [`hook`](CommitSignal::hook) with
/// [`Store::set_commit_hook`]; streamers block in
/// [`wait_beyond`](CommitSignal::wait_beyond) instead of polling.
#[derive(Debug, Default)]
pub struct CommitSignal {
    seq: Mutex<u64>,
    cond: Condvar,
}

impl CommitSignal {
    /// A signal starting at sequence 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `seq` updates are now committed and wakes waiters.
    /// Monotonic: stale notifications are ignored.
    pub fn notify(&self, seq: u64) {
        let mut current = self.seq.lock().expect("commit signal poisoned");
        if seq > *current {
            *current = seq;
            self.cond.notify_all();
        }
    }

    /// The highest committed sequence seen so far.
    pub fn current(&self) -> u64 {
        *self.seq.lock().expect("commit signal poisoned")
    }

    /// Seeds the signal with a store's current committed count (call
    /// once before serving, so a signal attached to a non-empty store
    /// doesn't start at 0).
    pub fn seed(&self, seq: u64) {
        self.notify(seq);
    }

    /// Overwrites the counter unconditionally and wakes waiters — for
    /// when the tracked store is *replaced* (a follower installing a
    /// bootstrap snapshot may move to a seq below a diverged cursor).
    /// The caller must ensure no commit hook can fire concurrently
    /// (hold the store's write lock across the replacement).
    pub fn reset(&self, seq: u64) {
        *self.seq.lock().expect("commit signal poisoned") = seq;
        self.cond.notify_all();
    }

    /// Blocks until the committed count exceeds `seen` or `timeout`
    /// elapses; returns the count either way.
    pub fn wait_beyond(&self, seen: u64, timeout: Duration) -> u64 {
        let guard = self.seq.lock().expect("commit signal poisoned");
        let (guard, _) = self
            .cond
            .wait_timeout_while(guard, timeout, |seq| *seq <= seen)
            .expect("commit signal poisoned");
        *guard
    }

    /// A [`CommitHook`] that notifies this signal. The hook only takes
    /// a lock and notifies a condvar — safe at the commit point.
    pub fn hook(self: &Arc<Self>) -> CommitHook {
        let signal = Arc::clone(self);
        CommitHook::new(move |seq| signal.notify(seq))
    }
}

/// What a replication streamer needs from the primary: its position
/// (epoch, committed count), a blocking wait for new commits, raw WAL
/// records after a cursor, and a snapshot for bootstraps.
pub trait ReplicationSource: Send + Sync {
    /// The primary's failover epoch.
    fn epoch(&self) -> u64;

    /// Total updates committed.
    fn committed_seq(&self) -> u64;

    /// Blocks until the committed count exceeds `seen` or `timeout`
    /// elapses; returns the current count.
    fn wait_beyond(&self, seen: u64, timeout: Duration) -> u64;

    /// Raw WAL payloads of records `applied + 1 ..= applied + limit`
    /// (fewer if fewer are committed). `Ok(None)` means the cursor is
    /// not servable from the retained WAL (it predates the current
    /// generation, or lies in the future) — the caller bootstraps with
    /// a snapshot instead.
    fn records_after(
        &self,
        applied: u64,
        limit: usize,
    ) -> Result<Option<Vec<Vec<u8>>>, ReplicaError>;

    /// A full snapshot in the storage snapshot-file format, plus the
    /// `(update_seq, epoch)` it captures.
    fn snapshot(&self) -> Result<(Vec<u8>, u64, u64), ReplicaError>;
}

/// One servable stretch of the retained log: a WAL file and the global
/// update sequence its records start after. Its records end where the
/// next span's begin.
struct LogSpan {
    path: PathBuf,
    generation: u64,
    base: u64,
}

/// Maps a follower cursor onto a store's **retained** WAL files —
/// every version-2 segment still on disk (including sealed segments of
/// older generations kept back for cursors like this one, whose bases
/// chain globally across generations) plus the current generation's
/// legacy single-file log if the store predates segmentation — and
/// reads the next batch of raw record payloads. `status` and `dir`
/// must come from one consistent read of the store (hold the lock
/// while calling `status()`; the file reads themselves happen
/// lock-free — committed WAL bytes are append-only, and a segment
/// retired away mid-read surfaces as `Ok(None)`, i.e. "bootstrap
/// instead").
pub fn store_records_after(
    dir: &Path,
    status: &StoreStatus,
    applied: u64,
    limit: usize,
) -> Result<Option<Vec<Vec<u8>>>, ReplicaError> {
    if applied > status.update_seq {
        return Ok(None);
    }
    let take = ((status.update_seq - applied) as usize).min(limit);
    if take == 0 {
        return Ok(Some(Vec::new()));
    }
    let mut spans: Vec<LogSpan> = Vec::new();
    let legacy = wal_file_path(dir, status.snapshot_seq);
    if legacy.exists() {
        spans.push(LogSpan {
            path: legacy,
            generation: status.snapshot_seq,
            base: status.update_seq - status.wal_records,
        });
    }
    let segments = list_wal_segments(dir).map_err(ReplicaError::Storage)?;
    for seg in segments {
        // A segment with an unreadable header (mid-creation or damaged)
        // serves no one; skip it — a cursor actually needing its
        // records fails the shortfall check below.
        if let Some(base) = seg.base_seq {
            spans.push(LogSpan {
                path: seg.path,
                generation: seg.generation,
                base,
            });
        }
    }
    // Bases are global sequence numbers, so sorting by base interleaves
    // the legacy file and the segments of every generation into one
    // contiguous log.
    spans.sort_by_key(|s| s.base);
    let Some(mut i) = spans.iter().rposition(|s| s.base <= applied) else {
        // The cursor predates everything retained.
        return Ok(None);
    };
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(take);
    let mut cursor = applied;
    while out.len() < take && i < spans.len() {
        let span = &spans[i];
        // Records past the committed count (a rotation racing this
        // read created a newer, still-empty span) are never requested.
        let end = spans
            .get(i + 1)
            .map(|next| next.base)
            .unwrap_or(status.update_seq)
            .min(status.update_seq);
        if cursor < end {
            let skip = cursor - span.base;
            let want = ((end - cursor) as usize).min(take - out.len());
            match read_wal_payloads(&span.path, span.generation, skip, want) {
                Ok(payloads) => {
                    if payloads.len() < want {
                        // The WAL holds fewer intact records than the
                        // store says it committed — local corruption,
                        // not a race.
                        return Err(ReplicaError::Storage(StorageError::Corrupt {
                            file: span.path.display().to_string(),
                            detail: format!(
                                "only {} of {want} committed records after cursor {cursor} \
                                 are intact",
                                payloads.len()
                            ),
                        }));
                    }
                    cursor += payloads.len() as u64;
                    out.extend(payloads);
                }
                // Retired between the listing and the open: the cursor
                // is no longer servable from the retained log.
                Err(StorageError::Io { source, .. })
                    if source.kind() == std::io::ErrorKind::NotFound =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(ReplicaError::Storage(e)),
            }
        }
        i += 1;
    }
    if out.len() < take {
        // The spans never covered the requested range — a hole in the
        // retained log is corruption, not a rotation race (retirement
        // only ever removes a prefix of the old spans, which lands in
        // the NotFound arm above).
        return Err(ReplicaError::Storage(StorageError::Corrupt {
            file: dir.display().to_string(),
            detail: format!(
                "retained WAL covers only {} of {take} committed records after cursor {applied}",
                out.len()
            ),
        }));
    }
    Ok(Some(out))
}

/// A [`ReplicationSource`] over a shared [`Store`]. Construction via
/// [`install`](StoreSource::install) wires the store's commit hook to
/// an internal [`CommitSignal`], so streamers learn about commits the
/// moment the WAL append returns.
#[derive(Debug)]
pub struct StoreSource<E: StoreEngine> {
    store: Arc<RwLock<Store<E>>>,
    signal: Arc<CommitSignal>,
}

impl<E: StoreEngine> Clone for StoreSource<E> {
    fn clone(&self) -> Self {
        Self {
            store: Arc::clone(&self.store),
            signal: Arc::clone(&self.signal),
        }
    }
}

impl<E: StoreEngine + Sync> StoreSource<E> {
    /// Wraps `store`, installing a commit hook on it. Replaces any
    /// previously installed hook.
    pub fn install(store: Arc<RwLock<Store<E>>>) -> Self {
        let signal = Arc::new(CommitSignal::new());
        {
            let mut guard = store.write().expect("store lock poisoned");
            signal.seed(guard.status().update_seq);
            guard.set_commit_hook(signal.hook());
        }
        Self { store, signal }
    }

    /// The commit signal streamers block on.
    pub fn signal(&self) -> &Arc<CommitSignal> {
        &self.signal
    }
}

impl<E: StoreEngine + Sync> ReplicationSource for StoreSource<E> {
    fn epoch(&self) -> u64 {
        self.store
            .read()
            .expect("store lock poisoned")
            .status()
            .epoch
    }

    fn committed_seq(&self) -> u64 {
        self.signal.current()
    }

    fn wait_beyond(&self, seen: u64, timeout: Duration) -> u64 {
        self.signal.wait_beyond(seen, timeout)
    }

    fn records_after(
        &self,
        applied: u64,
        limit: usize,
    ) -> Result<Option<Vec<Vec<u8>>>, ReplicaError> {
        let (dir, status) = {
            let guard = self.store.read().expect("store lock poisoned");
            (guard.dir().to_path_buf(), guard.status())
        };
        store_records_after(&dir, &status, applied, limit)
    }

    fn snapshot(&self) -> Result<(Vec<u8>, u64, u64), ReplicaError> {
        let guard = self.store.read().expect("store lock poisoned");
        let status = guard.status();
        let meta = SnapshotMeta {
            seq: status.snapshot_seq,
            update_seq: status.update_seq,
            epoch: status.epoch,
        };
        let bytes = snapshot_bytes(meta, &guard.engine().capture());
        Ok((bytes, status.update_seq, status.epoch))
    }
}

/// The registry of live follower cursors on a primary, feeding the
/// store's segment-retention floor
/// ([`RetentionHook`](silkmoth_storage::RetentionHook)): sealed WAL
/// segments already covered by the snapshot are kept on disk while any
/// registered cursor still needs their records, so a follower resuming
/// inside a retained segment streams records instead of being forced
/// through a full snapshot bootstrap.
#[derive(Debug, Default)]
pub struct CursorTracker {
    cursors: Mutex<HashMap<u64, u64>>,
    next_id: AtomicU64,
}

impl CursorTracker {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a follower cursor at `applied` (use `u64::MAX` for a
    /// cursor that is bootstrapping and needs no retained records yet).
    /// The cursor deregisters when the returned handle drops.
    pub fn register(self: &Arc<Self>, applied: u64) -> CursorHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.cursors
            .lock()
            .expect("cursor tracker poisoned")
            .insert(id, applied);
        CursorHandle {
            tracker: Arc::clone(self),
            id,
        }
    }

    /// The lowest applied sequence across registered cursors — every
    /// record with a sequence above this is still needed by someone.
    /// `u64::MAX` when no cursor is outstanding.
    pub fn floor(&self) -> u64 {
        self.cursors
            .lock()
            .expect("cursor tracker poisoned")
            .values()
            .copied()
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Registered cursors.
    pub fn len(&self) -> usize {
        self.cursors.lock().expect("cursor tracker poisoned").len()
    }

    /// True when no cursor is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One registered cursor in a [`CursorTracker`]; advancing it raises
/// the retention floor, dropping it deregisters.
#[derive(Debug)]
pub struct CursorHandle {
    tracker: Arc<CursorTracker>,
    id: u64,
}

impl CursorHandle {
    /// Records that the follower behind this cursor has applied (or
    /// been shipped) everything up to `applied`.
    pub fn advance(&self, applied: u64) {
        self.tracker
            .cursors
            .lock()
            .expect("cursor tracker poisoned")
            .insert(self.id, applied);
    }
}

impl Drop for CursorHandle {
    fn drop(&mut self) {
        self.tracker
            .cursors
            .lock()
            .expect("cursor tracker poisoned")
            .remove(&self.id);
    }
}

/// Tuning for one follower connection's streamer.
#[derive(Debug, Clone, Copy)]
pub struct StreamerConfig {
    /// Heartbeat interval when the follower is caught up; also bounds
    /// how long a connection thread lingers after a stop request.
    pub heartbeat: Duration,
    /// Max records fetched (and framed) per batch.
    pub batch: usize,
    /// Max frame body accepted from / offered to the peer, in bytes.
    pub max_frame_len: u32,
}

impl Default for StreamerConfig {
    fn default() -> Self {
        Self {
            heartbeat: Duration::from_millis(500),
            batch: 256,
            max_frame_len: 256 << 20,
        }
    }
}

/// Serves one follower connection: reads the handshake, then streams
/// records (or a bootstrap snapshot when the cursor is unservable)
/// until `stop` is set, the follower goes away, or the source's epoch
/// changes under us (promotion elsewhere — the follower must re-handshake).
///
/// A malformed handshake is answered with a best-effort [`Frame::Error`]
/// naming the problem before the error is returned.
///
/// When a `tracker` is given, the connection registers its cursor in
/// it for the lifetime of the stream, so the primary's store retains
/// the sealed WAL segments this follower still needs.
pub fn stream_updates(
    source: &dyn ReplicationSource,
    io: &mut (impl Read + Write),
    stop: &AtomicBool,
    cfg: &StreamerConfig,
    tracker: Option<&Arc<CursorTracker>>,
) -> Result<(), ReplicaError> {
    let hello = match read_handshake(io) {
        Ok(hello) => hello,
        Err(e) => {
            let _ = write_frame(io, &Frame::Error(e.to_string()));
            return Err(e);
        }
    };
    let epoch = source.epoch();
    // A cursor minted under another epoch may index a diverged history,
    // and a cursor of 0 carries no shared-history evidence at all (the
    // primary's seq-0 state is its *initial build*, not necessarily
    // empty). Both go through the bootstrap path, via the unservable
    // sentinel.
    let mut applied = if hello.epoch == epoch && hello.applied_seq > 0 {
        hello.applied_seq
    } else {
        u64::MAX
    };
    let cursor = tracker.map(|t| t.register(applied));
    let mut committed = source.committed_seq();
    write_frame(
        io,
        &Frame::Heartbeat {
            committed_seq: committed,
        },
    )?;
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        if source.epoch() != epoch {
            let msg = "primary epoch changed; reconnect to re-handshake".to_string();
            let _ = write_frame(io, &Frame::Error(msg.clone()));
            return Err(ReplicaError::Protocol(msg));
        }
        if applied == committed {
            committed = source.wait_beyond(applied, cfg.heartbeat);
            if applied >= committed {
                write_frame(
                    io,
                    &Frame::Heartbeat {
                        committed_seq: committed,
                    },
                )?;
            }
            continue;
        }
        match source.records_after(applied, cfg.batch)? {
            Some(payloads) if !payloads.is_empty() => {
                for payload in payloads {
                    if payload.len() as u64 > u64::from(cfg.max_frame_len) {
                        return Err(ReplicaError::Protocol(format!(
                            "WAL record of {} bytes exceeds the {}-byte frame cap",
                            payload.len(),
                            cfg.max_frame_len
                        )));
                    }
                    applied += 1;
                    write_frame(
                        io,
                        &Frame::Record {
                            seq: applied,
                            payload,
                        },
                    )?;
                }
                if let Some(cursor) = &cursor {
                    cursor.advance(applied);
                }
            }
            // Unservable cursor (too old, foreign epoch, or rotated
            // away mid-read) or an empty batch from a raced rotation:
            // bootstrap.
            _ => {
                let (snapshot, seq, snap_epoch) = source.snapshot()?;
                write_frame(
                    io,
                    &Frame::Snapshot {
                        epoch: snap_epoch,
                        seq,
                        snapshot,
                    },
                )?;
                applied = seq;
                if let Some(cursor) = &cursor {
                    cursor.advance(applied);
                }
            }
        }
        committed = source.committed_seq();
    }
}

/// A running replication log listener: one accept thread, one streamer
/// thread per connected follower.
#[derive(Debug)]
pub struct ReplicaServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    followers: Arc<AtomicUsize>,
    cursors: Arc<CursorTracker>,
}

impl ReplicaServer {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently connected followers.
    pub fn follower_count(&self) -> usize {
        self.followers.load(Ordering::Relaxed)
    }

    /// The shared follower-count gauge, for surfacing in stats.
    pub fn follower_gauge(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.followers)
    }

    /// The registry of this listener's follower cursors — wire its
    /// [`floor`](CursorTracker::floor) into the store's
    /// [`RetentionHook`](silkmoth_storage::RetentionHook) so sealed WAL
    /// segments outlive snapshot rotation while a follower needs them.
    pub fn cursor_tracker(&self) -> Arc<CursorTracker> {
        Arc::clone(&self.cursors)
    }

    /// Stops accepting and asks streamer threads to exit (they notice
    /// within one heartbeat interval).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ReplicaServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and serves `source`'s update log to any follower that
/// connects. Each connection gets its own thread running
/// [`stream_updates`]; handshakes are given 10 s to arrive.
pub fn serve_log<S: ReplicationSource + 'static>(
    source: Arc<S>,
    addr: impl ToSocketAddrs,
    cfg: StreamerConfig,
) -> std::io::Result<ReplicaServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let followers = Arc::new(AtomicUsize::new(0));
    let cursors = Arc::new(CursorTracker::new());
    let accept = {
        let stop = Arc::clone(&stop);
        let followers = Arc::clone(&followers);
        let cursors = Arc::clone(&cursors);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(mut conn) = conn else { continue };
                let source = Arc::clone(&source);
                let stop = Arc::clone(&stop);
                let followers = Arc::clone(&followers);
                let cursors = Arc::clone(&cursors);
                std::thread::spawn(move || {
                    let _ = conn.set_nodelay(true);
                    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
                    let _ = conn.set_write_timeout(Some(Duration::from_secs(30)));
                    followers.fetch_add(1, Ordering::Relaxed);
                    let _ = stream_updates(source.as_ref(), &mut conn, &stop, &cfg, Some(&cursors));
                    followers.fetch_sub(1, Ordering::Relaxed);
                });
            }
        })
    };
    Ok(ReplicaServer {
        addr,
        stop,
        accept: Some(accept),
        followers,
        cursors,
    })
}
