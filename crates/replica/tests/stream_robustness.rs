//! Exhaustive robustness fuzz of the replication stream framing,
//! mirroring the storage crate's `wal_robustness.rs`: every proper
//! prefix (torn stream) and every single-byte flip of a representative
//! handshake and frame stream must produce a *named* error and never a
//! panic — and a flip must never smuggle a divergent frame past the
//! CRC: every frame parsed before the error matches the original.

use silkmoth_replica::{
    read_frame, read_handshake, write_frame, write_handshake, Frame, Handshake,
};
use std::io::Cursor;

const MAX_BODY: u32 = 1 << 20;

fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::Heartbeat { committed_seq: 7 },
        Frame::Record {
            seq: 8,
            payload: vec![0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42],
        },
        Frame::Snapshot {
            epoch: 2,
            seq: 8,
            snapshot: (0..32u8).collect(),
        },
        Frame::Error("halting".to_string()),
    ]
}

fn encode_stream(frames: &[Frame]) -> Vec<u8> {
    let mut buf = Vec::new();
    for frame in frames {
        write_frame(&mut buf, frame).unwrap();
    }
    buf
}

/// Parses frames until the stream errors or is exhausted; returns the
/// frames and the error, if any.
fn parse_all(bytes: &[u8]) -> (Vec<Frame>, Option<String>) {
    let mut cursor = Cursor::new(bytes);
    let mut frames = Vec::new();
    loop {
        if cursor.position() == bytes.len() as u64 {
            return (frames, None);
        }
        match read_frame(&mut cursor, MAX_BODY) {
            Ok(frame) => frames.push(frame),
            Err(e) => return (frames, Some(e.to_string())),
        }
    }
}

#[test]
fn every_prefix_of_a_frame_stream_fails_cleanly() {
    let original = sample_frames();
    let bytes = encode_stream(&original);
    // A cut exactly between frames is a clean close (EOF at a frame
    // boundary); every other cut is a torn frame and must error.
    let boundaries: Vec<usize> = original
        .iter()
        .scan(0usize, |offset, frame| {
            let mut one = Vec::new();
            write_frame(&mut one, frame).unwrap();
            *offset += one.len();
            Some(*offset)
        })
        .collect();
    for cut in 0..bytes.len() {
        let (frames, err) = parse_all(&bytes[..cut]);
        assert!(
            frames.len() <= original.len(),
            "cut {cut}: more frames than written"
        );
        assert_eq!(
            frames,
            original[..frames.len()],
            "cut {cut}: divergent frame parsed from a truncated stream"
        );
        if cut == 0 || boundaries.contains(&cut) {
            assert!(
                err.is_none(),
                "cut {cut} at a frame boundary errored: {err:?}"
            );
        } else {
            let err = err.unwrap_or_else(|| panic!("cut {cut}: truncation swallowed silently"));
            assert!(!err.is_empty(), "cut {cut}: unnamed error");
        }
    }
}

#[test]
fn every_byte_flip_of_a_frame_stream_is_caught() {
    let original = sample_frames();
    let bytes = encode_stream(&original);
    for (at, mask) in (0..bytes.len()).flat_map(|i| [(i, 0xFFu8), (i, 0x01)]) {
        let mut mutated = bytes.clone();
        mutated[at] ^= mask;
        let (frames, err) = parse_all(&mutated);
        let err = err.unwrap_or_else(|| {
            panic!("flip {mask:#04x} at byte {at} produced a clean parse of {frames:?}")
        });
        assert!(!err.is_empty(), "flip at {at}: unnamed error");
        // Nothing divergent sneaks through: frames parsed before the
        // error are exactly the originals.
        assert_eq!(
            frames,
            original[..frames.len()],
            "flip {mask:#04x} at byte {at} let a divergent frame through"
        );
    }
}

#[test]
fn every_prefix_and_flip_of_a_handshake_is_caught() {
    let hello = Handshake {
        epoch: 3,
        applied_seq: 77,
    };
    let mut bytes = Vec::new();
    write_handshake(&mut bytes, &hello).unwrap();

    for cut in 0..bytes.len() {
        let err = read_handshake(&mut Cursor::new(&bytes[..cut]))
            .expect_err("truncated handshake accepted");
        assert!(!err.to_string().is_empty(), "cut {cut}: unnamed error");
    }
    for (at, mask) in (0..bytes.len()).flat_map(|i| [(i, 0xFFu8), (i, 0x01)]) {
        let mut mutated = bytes.clone();
        mutated[at] ^= mask;
        let err = read_handshake(&mut Cursor::new(&mutated)).unwrap_err();
        assert!(
            !err.to_string().is_empty(),
            "flip {mask:#04x} at byte {at}: unnamed error"
        );
    }
}

/// Oversized length prefixes are rejected by the cap before any
/// allocation, for every frame position in the stream.
#[test]
fn corrupted_length_prefixes_never_allocate_wild() {
    let original = sample_frames();
    let bytes = encode_stream(&original);
    // Frame headers start at the cumulative offsets of the encoding.
    let mut offset = 0usize;
    for frame in &original {
        let mut single = Vec::new();
        write_frame(&mut single, frame).unwrap();
        let mut mutated = bytes.clone();
        mutated[offset + 1..offset + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        let (frames, err) = parse_all(&mutated);
        assert_eq!(frames, original[..frames.len()]);
        assert!(
            err.expect("oversized length accepted").contains("cap"),
            "length corruption at frame offset {offset} not stopped by the cap"
        );
        offset += single.len();
    }
}
