//! Seeded chaos harness for the replication stream: a primary store
//! takes a random committed workload (appends, removes, compactions,
//! forced snapshot rotations) while a follower tails it over the
//! deterministic fault-injecting transport from [`silkmoth_replica::sim`]
//! — connections refused, cut mid-record, bytes flipped in transit.
//! The follower must converge to a state **byte-identical** to the
//! primary (zero acked-write loss), surviving every disconnect by
//! resuming from its cursor or re-bootstrapping from a snapshot.
//!
//! Also pinned here, scripted rather than randomized: idempotent skip
//! of re-sent records, forced bootstrap when the cursor predates the
//! retained WAL, and forced bootstrap on an epoch change (failover).

use rand::{rngs::StdRng, Rng, SeedableRng};
use silkmoth_collection::Collection;
use silkmoth_core::{CompactionPolicy, Engine, EngineConfig, RelatednessMetric, Update};
use silkmoth_replica::{
    run_follower, serve_log, sim_duplex, stream_updates, write_frame, Connector, FaultPlan,
    FollowerConfig, FollowerShared, Frame, ReplicaSink, SimStream, StoreSink, StoreSource,
    StreamerConfig, TcpConnector,
};
use silkmoth_storage::{
    snapshot_bytes, RetentionHook, SnapshotMeta, Store, StoreConfig, StoreEngine,
};
use silkmoth_text::SimilarityFunction;
use std::io::Read;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread;
use std::time::{Duration, Instant};

fn cfg() -> EngineConfig {
    EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.5,
        0.0,
    )
}

fn base_sets() -> Vec<Vec<String>> {
    (0..8)
        .map(|i| {
            (0..2)
                .map(|j| format!("w{} w{} shared{}", (i * 2 + j) % 5, (i + j) % 3, i % 4))
                .collect()
        })
        .collect()
}

fn fresh_engine(raw: &[Vec<String>]) -> Engine {
    Engine::new(Collection::build(raw, cfg().tokenization()), cfg()).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "silkmoth-replica-chaos-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn nosync() -> StoreConfig {
    StoreConfig {
        sync: false,
        ..StoreConfig::default()
    }
}

/// Search output as comparable (id, score bits) pairs.
fn search_bits(engine: &Engine, elems: &[&str]) -> Vec<(u32, u64)> {
    let r = engine.collection().encode_set(elems);
    engine
        .search(&r)
        .results
        .into_iter()
        .map(|(sid, score)| (sid, score.to_bits()))
        .collect()
}

/// Byte-identical check: same serialized snapshot under the same meta,
/// and bit-equal search output for a few probes.
fn assert_byte_identical(got: &Engine, want: &Engine, what: &str) {
    let meta = SnapshotMeta::default();
    assert_eq!(
        snapshot_bytes(meta, &got.capture()),
        snapshot_bytes(meta, &want.capture()),
        "{what}: serialized state differs"
    );
    for probe in [
        vec!["w0 w1 shared0", "w2 w0 shared2"],
        vec!["w4 w2 shared3"],
        vec!["chaos marker 7"],
    ] {
        assert_eq!(
            search_bits(got, &probe),
            search_bits(want, &probe),
            "{what}: search {probe:?}"
        );
    }
}

/// One random committed update against the primary. Ids are taken from
/// a capture so removals always name live sets.
fn random_update(rng: &mut StdRng, primary: &Arc<RwLock<Store<Engine>>>) -> Update {
    let roll: u32 = rng.random_range(0..10u32);
    let live: Vec<u32> = {
        let guard = primary.read().unwrap();
        guard
            .engine()
            .capture()
            .live
            .iter()
            .map(|(id, _)| *id)
            .collect()
    };
    if roll < 6 || live.len() < 3 {
        let n = rng.random_range(1..3usize);
        Update::Append(
            (0..n)
                .map(|_| {
                    (0..rng.random_range(1..3usize))
                        .map(|_| {
                            format!(
                                "w{} shared{} chaos marker {}",
                                rng.random_range(0..6u32),
                                rng.random_range(0..4u32),
                                rng.random_range(0..9u32)
                            )
                        })
                        .collect()
                })
                .collect(),
        )
    } else if roll < 9 {
        let k = rng.random_range(1..3usize).min(live.len());
        let mut ids: Vec<u32> = (0..k)
            .map(|_| live[rng.random_range(0..live.len())])
            .collect();
        ids.sort_unstable();
        ids.dedup();
        Update::Remove(ids)
    } else {
        Update::Compact
    }
}

/// A follower connector over the simulated transport: each connect may
/// be refused, and each accepted connection gets a seeded fault plan on
/// the primary→follower direction (cuts mid-record, byte flips). The
/// primary side of every pipe runs a real [`stream_updates`] session in
/// its own thread.
struct ChaosConnector {
    source: Arc<StoreSource<Engine>>,
    stop: Arc<AtomicBool>,
    rng: StdRng,
    streamer_cfg: StreamerConfig,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Connector for ChaosConnector {
    type Io = SimStream;

    fn connect(&mut self) -> std::io::Result<SimStream> {
        if self.rng.random_range(0..8u32) == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "simulated refusal",
            ));
        }
        let primary_faults = FaultPlan {
            cut_after: if self.rng.random_range(0..3u32) < 2 {
                Some(self.rng.random_range(30..6000u64))
            } else {
                None
            },
            flip: if self.rng.random_range(0..4u32) == 0 {
                Some((self.rng.random_range(0..3000u64), 0xA5))
            } else {
                None
            },
            delay: None,
        };
        let (follower_io, mut primary_io) = sim_duplex(
            FaultPlan::default(),
            primary_faults,
            Duration::from_millis(500),
        );
        let source = Arc::clone(&self.source);
        let stop = Arc::clone(&self.stop);
        let cfg = self.streamer_cfg;
        self.threads.push(thread::spawn(move || {
            let _ = stream_updates(source.as_ref(), &mut primary_io, &stop, &cfg, None);
        }));
        Ok(follower_io)
    }
}

fn fast_streamer_cfg() -> StreamerConfig {
    StreamerConfig {
        heartbeat: Duration::from_millis(10),
        batch: 16,
        ..StreamerConfig::default()
    }
}

fn fast_follower_cfg() -> FollowerConfig {
    FollowerConfig {
        backoff_min: Duration::from_millis(2),
        backoff_max: Duration::from_millis(40),
        ..FollowerConfig::default()
    }
}

#[test]
fn follower_converges_byte_identically_under_chaos() {
    for seed in [11u64, 29, 47] {
        let primary_dir = temp_dir(&format!("chaos-primary-{seed}"));
        let follower_dir = temp_dir(&format!("chaos-follower-{seed}"));
        let primary = Arc::new(RwLock::new(
            Store::create(&primary_dir, fresh_engine(&base_sets()), nosync()).unwrap(),
        ));
        let source = Arc::new(StoreSource::install(Arc::clone(&primary)));

        let stop_streamers = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(FollowerShared::new());
        let connector = ChaosConnector {
            source: Arc::clone(&source),
            stop: Arc::clone(&stop_streamers),
            rng: StdRng::seed_from_u64(seed ^ 0xC0FFEE),
            streamer_cfg: fast_streamer_cfg(),
            threads: Vec::new(),
        };
        let sink = StoreSink::new(
            Store::create(&follower_dir, fresh_engine(&[]), nosync()).unwrap(),
            cfg(),
            nosync(),
        );
        let follower = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || run_follower(connector, sink, &shared, &fast_follower_cfg()))
        };

        // Drive a random committed workload, forcing a rotation every
        // 20 updates so a lagging follower's cursor falls off the
        // retained WAL and the bootstrap path gets exercised.
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..80 {
            let update = random_update(&mut rng, &primary);
            primary.write().unwrap().apply(update).unwrap();
            if i % 20 == 19 {
                primary.write().unwrap().snapshot().unwrap();
            }
            if i % 7 == 0 {
                thread::sleep(Duration::from_millis(1));
            }
        }
        let target = {
            let guard = primary.read().unwrap();
            guard.status().update_seq
        };

        // Convergence: every committed (acked) update present on the
        // follower.
        let deadline = Instant::now() + Duration::from_secs(60);
        while shared.status().applied_seq != target {
            assert!(
                Instant::now() < deadline,
                "seed {seed}: follower stuck at {} of {target} (status {:?})",
                shared.status().applied_seq,
                shared.status()
            );
            thread::sleep(Duration::from_millis(5));
        }
        shared.stop();
        let sink = follower.join().unwrap();
        stop_streamers.store(true, Ordering::Relaxed);

        let status = shared.status();
        assert_eq!(status.applied_seq, target, "seed {seed}: lost acked writes");
        {
            let guard = primary.read().unwrap();
            assert_byte_identical(
                sink.store().engine(),
                guard.engine(),
                &format!("seed {seed} after chaos"),
            );
        }
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }
}

/// Serves a scripted frame sequence to one follower connection, then
/// heartbeats until the follower disconnects.
struct ScriptConnector {
    frames: Vec<Frame>,
    committed: u64,
    served: bool,
    thread: Option<thread::JoinHandle<()>>,
}

impl Connector for ScriptConnector {
    type Io = SimStream;

    fn connect(&mut self) -> std::io::Result<SimStream> {
        assert!(!self.served, "script serves one connection");
        self.served = true;
        let (follower_io, mut primary_io) = sim_duplex(
            FaultPlan::default(),
            FaultPlan::default(),
            Duration::from_millis(500),
        );
        let frames = std::mem::take(&mut self.frames);
        let committed = self.committed;
        self.thread = Some(thread::spawn(move || {
            let mut hello = [0u8; 25];
            primary_io.read_exact(&mut hello).unwrap();
            for frame in &frames {
                write_frame(&mut primary_io, frame).unwrap();
            }
            loop {
                let beat = Frame::Heartbeat {
                    committed_seq: committed,
                };
                if write_frame(&mut primary_io, &beat).is_err() {
                    break;
                }
                thread::sleep(Duration::from_millis(5));
            }
        }));
        Ok(follower_io)
    }
}

/// Re-sent records (duplicate seqs after a retransmission) are skipped,
/// not re-applied: replay is idempotent.
#[test]
fn duplicate_records_are_skipped_idempotently() {
    let dir = temp_dir("dup-follower");
    let reference_dir = temp_dir("dup-reference");

    // Build the canonical three updates on a reference store and lift
    // its WAL payloads + bootstrap snapshot through a real source.
    let reference = Arc::new(RwLock::new(
        Store::create(&reference_dir, fresh_engine(&base_sets()), nosync()).unwrap(),
    ));
    let source = StoreSource::install(Arc::clone(&reference));
    let updates = vec![
        Update::Append(vec![vec!["chaos marker 7".into()]]),
        Update::Append(vec![vec!["w1 shared2".into()]]),
        Update::Remove(vec![2]),
    ];
    for u in updates {
        reference.write().unwrap().apply(u).unwrap();
    }
    use silkmoth_replica::ReplicationSource;
    let (snapshot, snap_seq, snap_epoch) = {
        // Snapshot of the *initial* state is gone (the store moved on),
        // so bootstrap from the live state minus the tail we replay:
        // instead, bootstrap with the full snapshot and replay records
        // 1..=3 *again* — every one must be skipped.
        source.snapshot().unwrap()
    };
    let payloads = source.records_after(0, 10).unwrap().unwrap();
    assert_eq!(payloads.len(), 3);

    let mut frames = vec![Frame::Snapshot {
        epoch: snap_epoch,
        seq: snap_seq,
        snapshot,
    }];
    for (i, p) in payloads.iter().enumerate() {
        frames.push(Frame::Record {
            seq: i as u64 + 1,
            payload: p.clone(),
        });
    }

    let shared = Arc::new(FollowerShared::new());
    let connector = ScriptConnector {
        frames,
        committed: snap_seq,
        served: false,
        thread: None,
    };
    let sink = StoreSink::new(
        Store::create(&dir, fresh_engine(&[]), nosync()).unwrap(),
        cfg(),
        nosync(),
    );
    let follower = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || run_follower(connector, sink, &shared, &fast_follower_cfg()))
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    while shared.status().skipped < 3 {
        assert!(
            Instant::now() < deadline,
            "follower never skipped: {:?}",
            shared.status()
        );
        thread::sleep(Duration::from_millis(2));
    }
    shared.stop();
    let sink = follower.join().unwrap();
    let status = shared.status();
    assert_eq!(status.skipped, 3, "all re-sent records skipped");
    assert_eq!(status.bootstraps, 1);
    assert_eq!(sink.applied_seq(), 3);
    assert_byte_identical(
        sink.store().engine(),
        reference.read().unwrap().engine(),
        "after duplicate replay",
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&reference_dir);
}

/// A promotion elsewhere (epoch bump) invalidates a same-seq cursor:
/// the reconnecting follower must be re-bootstrapped, not resumed, and
/// must converge on the promoted history.
#[test]
fn epoch_change_forces_rebootstrap() {
    let primary_dir = temp_dir("epoch-primary");
    let follower_dir = temp_dir("epoch-follower");
    let primary = Arc::new(RwLock::new(
        Store::create(&primary_dir, fresh_engine(&base_sets()), nosync()).unwrap(),
    ));
    let source = Arc::new(StoreSource::install(Arc::clone(&primary)));
    for i in 0..5 {
        primary
            .write()
            .unwrap()
            .apply(Update::Append(vec![vec![format!("epoch test {i}")]]))
            .unwrap();
    }

    // Catch a follower up over the clean simulated transport.
    let run_until_caught_up = |sink: StoreSink<Engine>, target: u64| -> (StoreSink<Engine>, u64) {
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(FollowerShared::new());
        let connector = ChaosConnector {
            source: Arc::clone(&source),
            stop: Arc::clone(&stop),
            rng: StdRng::seed_from_u64(0), // faults are fine; the loop retries to convergence
            streamer_cfg: fast_streamer_cfg(),
            threads: Vec::new(),
        };
        let follower = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || run_follower(connector, sink, &shared, &fast_follower_cfg()))
        };
        let deadline = Instant::now() + Duration::from_secs(30);
        while shared.status().applied_seq != target {
            assert!(Instant::now() < deadline, "stuck: {:?}", shared.status());
            thread::sleep(Duration::from_millis(2));
        }
        shared.stop();
        let sink = follower.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        (sink, shared.status().bootstraps)
    };

    let sink = StoreSink::new(
        Store::create(&follower_dir, fresh_engine(&[]), nosync()).unwrap(),
        cfg(),
        nosync(),
    );
    let (sink, _) = run_until_caught_up(sink, 5);
    assert_eq!(sink.epoch(), 0);
    assert_eq!(sink.applied_seq(), 5);

    // Failover happens on the primary: epoch bumps, history continues.
    {
        let mut guard = primary.write().unwrap();
        assert_eq!(guard.bump_epoch().unwrap(), 1);
        guard
            .apply(Update::Append(vec![vec!["post failover set".into()]]))
            .unwrap();
    }

    // The follower's (epoch 0, seq 5) cursor must not be resumed.
    let (sink, bootstraps) = run_until_caught_up(sink, 6);
    assert!(
        bootstraps >= 1,
        "stale-epoch cursor must be re-bootstrapped"
    );
    assert_eq!(sink.epoch(), 1);
    assert_byte_identical(
        sink.store().engine(),
        primary.read().unwrap().engine(),
        "after failover",
    );
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}

/// End-to-end over real TCP: [`serve_log`] + [`TcpConnector`], live
/// tailing of appends committed after the follower connected, and the
/// follower-count gauge.
#[test]
fn tcp_serve_log_tails_live_commits() {
    let primary_dir = temp_dir("tcp-primary");
    let follower_dir = temp_dir("tcp-follower");
    let primary = Arc::new(RwLock::new(
        Store::create(&primary_dir, fresh_engine(&base_sets()), nosync()).unwrap(),
    ));
    let source = Arc::new(StoreSource::install(Arc::clone(&primary)));
    let mut server = serve_log(source, "127.0.0.1:0", fast_streamer_cfg()).unwrap();

    let shared = Arc::new(FollowerShared::new());
    let connector = TcpConnector {
        addr: server.local_addr().to_string(),
        connect_timeout: Duration::from_secs(5),
        read_timeout: Duration::from_secs(2),
        shared: Some(Arc::clone(&shared)),
    };
    let sink = StoreSink::new(
        Store::create(&follower_dir, fresh_engine(&[]), nosync()).unwrap(),
        cfg(),
        nosync(),
    );
    let follower = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || run_follower(connector, sink, &shared, &fast_follower_cfg()))
    };

    // Commits made while the follower is already tailing.
    for i in 0..10 {
        primary
            .write()
            .unwrap()
            .apply(Update::Append(vec![vec![format!("tcp live {i}")]]))
            .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while shared.status().applied_seq != 10 {
        assert!(Instant::now() < deadline, "stuck: {:?}", shared.status());
        thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.follower_count(), 1);
    shared.stop();
    let sink = follower.join().unwrap();
    assert_byte_identical(
        sink.store().engine(),
        primary.read().unwrap().engine(),
        "tcp tail",
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}

/// A faultless connector over the simulated transport: every connect
/// succeeds and streams cleanly, so any bootstrap the follower takes
/// is forced by the source, never by transport damage.
struct CleanConnector {
    source: Arc<StoreSource<Engine>>,
    stop: Arc<AtomicBool>,
    streamer_cfg: StreamerConfig,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Connector for CleanConnector {
    type Io = SimStream;

    fn connect(&mut self) -> std::io::Result<SimStream> {
        let (follower_io, mut primary_io) = sim_duplex(
            FaultPlan::default(),
            FaultPlan::default(),
            Duration::from_millis(500),
        );
        let source = Arc::clone(&self.source);
        let stop = Arc::clone(&self.stop);
        let cfg = self.streamer_cfg;
        self.threads.push(thread::spawn(move || {
            let _ = stream_updates(source.as_ref(), &mut primary_io, &stop, &cfg, None);
        }));
        Ok(follower_io)
    }
}

/// A follower whose cursor sits inside **sealed, retained WAL
/// segments** — including old-generation segments that survived a
/// snapshot rotation thanks to the retention floor — must resume from
/// records alone. Re-bootstrapping from a full snapshot here would
/// mean segment retention is not load-bearing for read scale-out.
#[test]
fn resume_inside_retained_segments_never_bootstraps() {
    let primary_dir = temp_dir("retain-primary");
    let follower_dir = temp_dir("retain-follower");
    let store_cfg = StoreConfig {
        sync: false,
        // Tiny segments: every record seals one, so the cursor always
        // points inside a sealed segment.
        policy: CompactionPolicy::DISABLED.segment_at_wal_bytes(64),
    };
    let mut store = Store::create(&primary_dir, fresh_engine(&base_sets()), store_cfg).unwrap();
    // The floor a replication cursor parked at seq 3 would publish.
    store.set_retention_hook(RetentionHook::new(|| 3));
    let primary = Arc::new(RwLock::new(store));
    let source = Arc::new(StoreSource::install(Arc::clone(&primary)));
    for i in 0..3 {
        primary
            .write()
            .unwrap()
            .apply(Update::Append(vec![vec![format!("pre rotation {i}")]]))
            .unwrap();
    }

    let run_until_caught_up = |sink: StoreSink<Engine>, target: u64| -> (StoreSink<Engine>, u64) {
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(FollowerShared::new());
        let connector = CleanConnector {
            source: Arc::clone(&source),
            stop: Arc::clone(&stop),
            streamer_cfg: fast_streamer_cfg(),
            threads: Vec::new(),
        };
        let follower = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || run_follower(connector, sink, &shared, &fast_follower_cfg()))
        };
        let deadline = Instant::now() + Duration::from_secs(30);
        while shared.status().applied_seq != target {
            assert!(Instant::now() < deadline, "stuck: {:?}", shared.status());
            thread::sleep(Duration::from_millis(2));
        }
        shared.stop();
        let sink = follower.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        (sink, shared.status().bootstraps)
    };

    let sink = StoreSink::new(
        Store::create(&follower_dir, fresh_engine(&[]), nosync()).unwrap(),
        cfg(),
        nosync(),
    );
    let (sink, _) = run_until_caught_up(sink, 3);
    assert_eq!(sink.applied_seq(), 3);

    // Records 4 and 5 land in sealed generation-0 segments, then a
    // rotation moves the primary on — the floor (3) must keep every
    // old segment still holding unconsumed records.
    {
        let mut guard = primary.write().unwrap();
        for i in 3..5 {
            guard
                .apply(Update::Append(vec![vec![format!("sealed segment {i}")]]))
                .unwrap();
        }
        guard.snapshot().unwrap();
        for i in 5..7 {
            guard
                .apply(Update::Append(vec![vec![format!("post rotation {i}")]]))
                .unwrap();
        }
    }
    let old_segments = std::fs::read_dir(&primary_dir)
        .unwrap()
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter(|n| n.starts_with("wal-0-"))
        .count();
    assert!(
        old_segments > 0,
        "the retention floor must keep generation-0 segments across the rotation"
    );

    let (sink, bootstraps) = run_until_caught_up(sink, 7);
    assert_eq!(
        bootstraps, 0,
        "a cursor inside retained segments resumes from records, never a snapshot"
    );
    assert_eq!(sink.applied_seq(), 7);
    assert_byte_identical(
        sink.store().engine(),
        primary.read().unwrap().engine(),
        "after retained-segment resume",
    );
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}
