//! # silkmoth-matching
//!
//! Maximum-weight bipartite matching — the verification kernel of SilkMoth
//! (§2.1, §5.3 of the paper).
//!
//! The relatedness metrics are built on the *maximum matching score*
//! `|R ∩̃_φ S|`: model `R` and `S` as the two sides of a bipartite graph,
//! weight each edge `(r, s)` by `φ(r, s) ∈ [0, 1]`, and take the weight of
//! the maximum matching. Because all weights are non-negative, this equals
//! the optimum of the classic assignment problem on the smaller side.
//!
//! This crate provides:
//!
//! * [`max_weight_assignment`] — Kuhn–Munkres / Jonker–Volgenant with
//!   potentials and slack arrays, `O(n²·m)` for an `n×m` matrix (`n ≤ m`
//!   internally; inputs are transposed as needed);
//! * [`greedy_matching_score`] — a fast greedy lower bound;
//! * [`exhaustive_max_matching`] — a brute-force oracle for testing
//!   (exponential; only for tiny graphs);
//! * [`reduce_identical`] — the triangle-inequality reduction of §5.3:
//!   identical elements must appear in some maximum matching, so they can
//!   be paired off (contributing weight 1 each) before running the `O(n³)`
//!   algorithm on the remainder.

mod hungarian;
mod reduction;
pub mod sparse;

pub use hungarian::{
    exhaustive_max_matching, greedy_matching_score, max_weight_assignment, Assignment, WeightMatrix,
};
pub use reduction::{reduce_identical, Reduction};
pub use sparse::{sparse_from_dense, sparse_max_matching, Edge};
