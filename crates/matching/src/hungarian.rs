//! Kuhn–Munkres maximum-weight assignment with potentials and slacks.

/// A dense, row-major weight matrix. Entries are similarities in `[0, 1]`
/// (any non-negative finite weights work).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl WeightMatrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, w: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = w;
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }
}

/// Result of [`max_weight_assignment`].
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Total weight of the matching — the paper's `|R ∩̃_φ S|`.
    pub score: f64,
    /// For each row of the *input* matrix, the matched column (every row of
    /// the smaller side is matched; when rows > cols some rows are `None`).
    pub row_to_col: Vec<Option<usize>>,
}

/// Maximum-weight bipartite matching over a dense weight matrix.
///
/// All weights must be finite and non-negative; under that precondition a
/// maximum-weight *matching* saturating the smaller side is optimal, so
/// the problem reduces to the assignment problem, solved here by the
/// shortest-augmenting-path Kuhn–Munkres algorithm in `O(n²·m)` time
/// (`n = min(rows, cols)`, `m = max(rows, cols)`).
///
/// ```
/// use silkmoth_matching::{max_weight_assignment, WeightMatrix};
/// let mut w = WeightMatrix::zeros(2, 2);
/// w.set(0, 0, 0.9);
/// w.set(0, 1, 0.8);
/// w.set(1, 0, 0.85);
/// w.set(1, 1, 0.1);
/// let a = max_weight_assignment(&w);
/// // 0.8 + 0.85 beats 0.9 + 0.1: the greedy choice is not optimal.
/// assert!((a.score - 1.65).abs() < 1e-9);
/// assert_eq!(a.row_to_col, vec![Some(1), Some(0)]);
/// ```
pub fn max_weight_assignment(w: &WeightMatrix) -> Assignment {
    if w.rows() == 0 || w.cols() == 0 {
        return Assignment {
            score: 0.0,
            row_to_col: vec![None; w.rows()],
        };
    }
    if w.rows() > w.cols() {
        // Solve the transpose and invert the mapping.
        let t = w.transposed();
        let a = max_weight_assignment(&t);
        let mut row_to_col = vec![None; w.rows()];
        for (trow, tcol) in a.row_to_col.iter().enumerate() {
            if let Some(c) = tcol {
                row_to_col[*c] = Some(trow);
            }
        }
        return Assignment {
            score: a.score,
            row_to_col,
        };
    }

    let n = w.rows();
    let m = w.cols();
    // Minimize cost = -weight. 1-indexed arrays per the classic
    // formulation; p[j] is the row matched to column j (0 = unmatched).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1];
    let mut way = vec![0usize; m + 1];
    let mut minv = vec![0.0f64; m + 1];
    let mut used = vec![false; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        minv.iter_mut().for_each(|x| *x = f64::INFINITY);
        used.iter_mut().for_each(|x| *x = false);
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = -w.get(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            debug_assert!(delta.is_finite(), "weights must be finite");
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the path recorded in `way`.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![None; n];
    let mut score = 0.0;
    for j in 1..=m {
        if p[j] != 0 {
            row_to_col[p[j] - 1] = Some(j - 1);
            score += w.get(p[j] - 1, j - 1);
        }
    }
    Assignment { score, row_to_col }
}

/// Greedy matching: repeatedly takes the heaviest remaining edge.
///
/// A `1/2`-approximation lower bound on the maximum matching score, useful
/// for sanity checks and quick estimates. `O(n·m·log(n·m))`.
pub fn greedy_matching_score(w: &WeightMatrix) -> f64 {
    let mut edges: Vec<(usize, usize)> = (0..w.rows())
        .flat_map(|i| (0..w.cols()).map(move |j| (i, j)))
        .collect();
    edges.sort_unstable_by(|&(i1, j1), &(i2, j2)| {
        w.get(i2, j2)
            .partial_cmp(&w.get(i1, j1))
            .unwrap()
            .then(i1.cmp(&i2))
            .then(j1.cmp(&j2))
    });
    let mut used_row = vec![false; w.rows()];
    let mut used_col = vec![false; w.cols()];
    let mut score = 0.0;
    for (i, j) in edges {
        if !used_row[i] && !used_col[j] {
            used_row[i] = true;
            used_col[j] = true;
            score += w.get(i, j);
        }
    }
    score
}

/// Exhaustive maximum matching by recursion over rows — the test oracle.
///
/// Exponential in `min(rows, cols)`; intended for graphs with at most ~9
/// elements on the smaller side.
pub fn exhaustive_max_matching(w: &WeightMatrix) -> f64 {
    let w = if w.rows() > w.cols() {
        w.transposed()
    } else {
        w.clone()
    };
    let mut used = vec![false; w.cols()];
    fn rec(w: &WeightMatrix, row: usize, used: &mut [bool]) -> f64 {
        if row == w.rows() {
            return 0.0;
        }
        // Either leave this row unmatched…
        let mut best = rec(w, row + 1, used);
        // …or match it to any free column.
        for j in 0..w.cols() {
            if !used[j] {
                used[j] = true;
                let v = w.get(row, j) + rec(w, row + 1, used);
                used[j] = false;
                best = best.max(v);
            }
        }
        best
    }
    rec(&w, 0, &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_matrices() {
        let a = max_weight_assignment(&WeightMatrix::zeros(0, 5));
        assert_eq!(a.score, 0.0);
        assert!(a.row_to_col.is_empty());
        let b = max_weight_assignment(&WeightMatrix::zeros(3, 0));
        assert_eq!(b.score, 0.0);
        assert_eq!(b.row_to_col, vec![None, None, None]);
    }

    #[test]
    fn single_cell() {
        let mut w = WeightMatrix::zeros(1, 1);
        w.set(0, 0, 0.7);
        let a = max_weight_assignment(&w);
        assert_eq!(a.score, 0.7);
        assert_eq!(a.row_to_col, vec![Some(0)]);
    }

    #[test]
    fn rectangular_wide() {
        let w = WeightMatrix::from_fn(2, 4, |i, j| if j == i + 2 { 1.0 } else { 0.1 });
        let a = max_weight_assignment(&w);
        assert!((a.score - 2.0).abs() < 1e-9);
        assert_eq!(a.row_to_col, vec![Some(2), Some(3)]);
    }

    #[test]
    fn rectangular_tall_transposes() {
        let w = WeightMatrix::from_fn(4, 2, |i, j| if i == j + 2 { 1.0 } else { 0.1 });
        let a = max_weight_assignment(&w);
        assert!((a.score - 2.0).abs() < 1e-9);
        assert_eq!(a.row_to_col[2], Some(0));
        assert_eq!(a.row_to_col[3], Some(1));
        // Exactly two rows matched.
        assert_eq!(a.row_to_col.iter().flatten().count(), 2);
    }

    #[test]
    fn anti_greedy_instance() {
        // Row 0 wants col 0 greedily, but the optimum pairs 0→1, 1→0.
        let mut w = WeightMatrix::zeros(2, 2);
        w.set(0, 0, 1.0);
        w.set(0, 1, 0.9);
        w.set(1, 0, 0.9);
        w.set(1, 1, 0.0);
        let a = max_weight_assignment(&w);
        assert!((a.score - 1.8).abs() < 1e-9);
        let g = greedy_matching_score(&w);
        assert!((g - 1.0).abs() < 1e-9);
        assert!(g <= a.score);
    }

    #[test]
    fn paper_example2_scores() {
        // Example 2: R vs S4 under Jaccard aligns r1→s41 (0.8), r2→s42 (1.0),
        // r3→s43 (3/7), total ≈ 2.229.
        let mut w = WeightMatrix::zeros(3, 3);
        // Full pairwise Jaccard weights between R = Table 2 rows and S4.
        let r: [&[u32]; 3] = [&[1, 2, 3, 6, 8], &[4, 5, 7, 9, 10], &[1, 4, 5, 11, 12]];
        let s: [&[u32]; 3] = [&[1, 2, 3, 8], &[4, 5, 7, 9, 10], &[1, 4, 5, 6, 9]];
        for (i, ri) in r.iter().enumerate() {
            for (j, sj) in s.iter().enumerate() {
                w.set(i, j, silkmoth_text::jaccard_sorted(ri, sj));
            }
        }
        let a = max_weight_assignment(&w);
        let expect = 0.8 + 1.0 + 3.0 / 7.0;
        assert!((a.score - expect).abs() < 1e-9, "{}", a.score);
        assert_eq!(a.row_to_col, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn zero_matrix_scores_zero() {
        let w = WeightMatrix::zeros(3, 5);
        assert_eq!(max_weight_assignment(&w).score, 0.0);
    }

    #[test]
    fn matches_exhaustive_on_fixed_instances() {
        let instances: Vec<WeightMatrix> = vec![
            WeightMatrix::from_fn(3, 3, |i, j| ((i * 7 + j * 3) % 10) as f64 / 10.0),
            WeightMatrix::from_fn(4, 6, |i, j| ((i * 5 + j * 11) % 13) as f64 / 13.0),
            WeightMatrix::from_fn(5, 2, |i, j| ((i + j * j) % 7) as f64 / 7.0),
        ];
        for w in instances {
            let fast = max_weight_assignment(&w).score;
            let slow = exhaustive_max_matching(&w);
            assert!((fast - slow).abs() < 1e-9, "fast={fast} slow={slow}");
        }
    }

    #[test]
    fn assignment_is_a_valid_matching() {
        let w = WeightMatrix::from_fn(4, 4, |i, j| ((i * j + 1) % 5) as f64 / 5.0);
        let a = max_weight_assignment(&w);
        let cols: Vec<usize> = a.row_to_col.iter().flatten().copied().collect();
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), cols.len(), "columns must be distinct");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_hungarian_equals_exhaustive(
            rows in 1usize..5,
            cols in 1usize..5,
            seed in proptest::collection::vec(0u32..100, 25),
        ) {
            let w = WeightMatrix::from_fn(rows, cols, |i, j| seed[i * 5 + j] as f64 / 100.0);
            let fast = max_weight_assignment(&w).score;
            let slow = exhaustive_max_matching(&w);
            prop_assert!((fast - slow).abs() < 1e-9, "fast={} slow={}", fast, slow);
        }

        #[test]
        fn prop_score_bounds(
            rows in 1usize..6,
            cols in 1usize..6,
            seed in proptest::collection::vec(0u32..1000, 36),
        ) {
            let w = WeightMatrix::from_fn(rows, cols, |i, j| seed[i * 6 + j] as f64 / 1000.0);
            let a = max_weight_assignment(&w);
            // Score within [greedy, min(rows,cols)].
            let g = greedy_matching_score(&w);
            prop_assert!(a.score + 1e-9 >= g);
            prop_assert!(a.score <= rows.min(cols) as f64 + 1e-9);
            // Score equals the sum along the reported assignment.
            let sum: f64 = a.row_to_col.iter().enumerate()
                .filter_map(|(i, c)| c.map(|j| w.get(i, j)))
                .sum();
            prop_assert!((sum - a.score).abs() < 1e-9);
        }

        #[test]
        fn prop_transpose_invariant(
            rows in 1usize..6,
            cols in 1usize..6,
            seed in proptest::collection::vec(0u32..1000, 36),
        ) {
            let w = WeightMatrix::from_fn(rows, cols, |i, j| seed[i * 6 + j] as f64 / 1000.0);
            let s1 = max_weight_assignment(&w).score;
            let s2 = max_weight_assignment(&w.transposed()).score;
            prop_assert!((s1 - s2).abs() < 1e-9);
        }
    }
}
