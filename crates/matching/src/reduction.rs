//! Reduction-based verification (§5.3).
//!
//! When the dual distance `ψ = 1 − φ` satisfies the triangle inequality
//! (true for Jaccard distance and for `1 − Eds`, but *not* for `1 − φ_α`
//! with α > 0 — §6.5), any pair of **identical** elements must appear in
//! some maximum matching. The engine therefore pairs identical elements
//! off first — each contributing exactly 1.0 — and runs the Hungarian
//! algorithm only on the remainder, which the paper measured at a 30–50%
//! verification speedup (§8.4).

/// Outcome of pairing identical elements between two sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reduction {
    /// Number of identical pairs removed; each contributes 1.0 to the
    /// final maximum matching score.
    pub identical_pairs: usize,
    /// Indices (into the original `R`) of the unpaired elements.
    pub rest_r: Vec<usize>,
    /// Indices (into the original `S`) of the unpaired elements.
    pub rest_s: Vec<usize>,
}

/// Pairs identical elements between `r_keys` and `s_keys`.
///
/// Elements are "identical" when their keys are equal (token-id slices for
/// Jaccard, raw text for edit similarity). Duplicates pair off with
/// multiplicity `min(count_R, count_S)`. Runs in `O(n log n + m log m)`.
///
/// ```
/// use silkmoth_matching::reduce_identical;
/// let r = ["a", "b", "b", "c"];
/// let s = ["b", "d", "a"];
/// let red = reduce_identical(&r, &s);
/// assert_eq!(red.identical_pairs, 2);        // one "a", one "b"
/// assert_eq!(red.rest_r, vec![2, 3]);         // the extra "b" and "c"
/// assert_eq!(red.rest_s, vec![1]);            // "d"
/// ```
pub fn reduce_identical<K: Ord>(r_keys: &[K], s_keys: &[K]) -> Reduction {
    let mut r_order: Vec<usize> = (0..r_keys.len()).collect();
    let mut s_order: Vec<usize> = (0..s_keys.len()).collect();
    r_order.sort_by(|&a, &b| r_keys[a].cmp(&r_keys[b]).then(a.cmp(&b)));
    s_order.sort_by(|&a, &b| s_keys[a].cmp(&s_keys[b]).then(a.cmp(&b)));

    let mut identical = 0usize;
    let mut rest_r = Vec::new();
    let mut rest_s = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < r_order.len() && j < s_order.len() {
        match r_keys[r_order[i]].cmp(&s_keys[s_order[j]]) {
            std::cmp::Ordering::Less => {
                rest_r.push(r_order[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                rest_s.push(s_order[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                identical += 1;
                i += 1;
                j += 1;
            }
        }
    }
    rest_r.extend_from_slice(&r_order[i..]);
    rest_s.extend_from_slice(&s_order[j..]);
    rest_r.sort_unstable();
    rest_s.sort_unstable();
    Reduction {
        identical_pairs: identical,
        rest_r,
        rest_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exhaustive_max_matching, max_weight_assignment, WeightMatrix};
    use proptest::prelude::*;

    #[test]
    fn no_identicals() {
        let red = reduce_identical(&[1, 2, 3], &[4, 5]);
        assert_eq!(red.identical_pairs, 0);
        assert_eq!(red.rest_r, vec![0, 1, 2]);
        assert_eq!(red.rest_s, vec![0, 1]);
    }

    #[test]
    fn all_identical() {
        let red = reduce_identical(&["x", "y"], &["y", "x"]);
        assert_eq!(red.identical_pairs, 2);
        assert!(red.rest_r.is_empty());
        assert!(red.rest_s.is_empty());
    }

    #[test]
    fn multiset_multiplicity() {
        let red = reduce_identical(&[7, 7, 7], &[7, 7]);
        assert_eq!(red.identical_pairs, 2);
        assert_eq!(red.rest_r.len(), 1);
        assert!(red.rest_s.is_empty());
    }

    #[test]
    fn empty_sides() {
        let red = reduce_identical::<u32>(&[], &[1, 2]);
        assert_eq!(red.identical_pairs, 0);
        assert_eq!(red.rest_s, vec![0, 1]);
    }

    /// The §5.3 correctness claim, checked end-to-end: the matching score
    /// computed with reduction equals the plain Hungarian score, when the
    /// weight function is `1 − d` for a metric `d` with `d(x,y)=0 ⟺ x=y`.
    fn check_reduction_preserves_score(r: &[u32], s: &[u32]) {
        // Metric: d(x, y) = |x − y| / 16 clipped to 1 (absolute difference
        // is a metric; the similarity is 1 − d).
        let sim = |a: u32, b: u32| 1.0 - (a.abs_diff(b) as f64 / 16.0).min(1.0);
        let full = WeightMatrix::from_fn(r.len(), s.len(), |i, j| sim(r[i], s[j]));
        let direct = exhaustive_max_matching(&full);

        let red = reduce_identical(r, s);
        let rest = WeightMatrix::from_fn(red.rest_r.len(), red.rest_s.len(), |i, j| {
            sim(r[red.rest_r[i]], s[red.rest_s[j]])
        });
        let reduced = red.identical_pairs as f64 + max_weight_assignment(&rest).score;
        assert!(
            (direct - reduced).abs() < 1e-9,
            "direct={direct} reduced={reduced} r={r:?} s={s:?}"
        );
    }

    #[test]
    fn reduction_preserves_score_fixed() {
        check_reduction_preserves_score(&[1, 5, 9], &[5, 2, 9]);
        check_reduction_preserves_score(&[3, 3, 4], &[3, 3, 3]);
        check_reduction_preserves_score(&[0, 16], &[16, 0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn prop_reduction_preserves_score(
            r in proptest::collection::vec(0u32..12, 0..6),
            s in proptest::collection::vec(0u32..12, 0..6),
        ) {
            check_reduction_preserves_score(&r, &s);
        }

        #[test]
        fn prop_partition_is_complete(
            r in proptest::collection::vec(0u32..6, 0..8),
            s in proptest::collection::vec(0u32..6, 0..8),
        ) {
            let red = reduce_identical(&r, &s);
            prop_assert_eq!(red.identical_pairs + red.rest_r.len(), r.len());
            prop_assert_eq!(red.identical_pairs + red.rest_s.len(), s.len());
            // rest indices are valid, sorted, and unique.
            prop_assert!(red.rest_r.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(red.rest_s.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(red.rest_r.iter().all(|&i| i < r.len()));
            prop_assert!(red.rest_s.iter().all(|&j| j < s.len()));
        }
    }
}
