//! Sparse maximum-weight matching.
//!
//! With a similarity threshold α > 0, most entries of the verification
//! weight matrix are exactly zero (clamped). Since all weights are
//! non-negative, zero-weight edges never help: the maximum-weight matching
//! restricted to the *positive* edges has the same score. This module
//! exploits that by projecting the bipartite graph onto the rows and
//! columns incident to positive edges and running the dense Hungarian
//! solver on the (much smaller) projection.
//!
//! An ablation benchmark (`cargo bench -p silkmoth-bench --bench
//! matching`) quantifies the win; tests verify score equality against the
//! dense solver on random instances.

use crate::hungarian::{max_weight_assignment, WeightMatrix};

/// A positive-weight edge in the bipartite graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Row (element of `R`).
    pub row: usize,
    /// Column (element of `S`).
    pub col: usize,
    /// Weight `φ_α > 0`.
    pub weight: f64,
}

/// Maximum-weight matching over an edge list; rows/columns absent from
/// every edge are implicitly unmatched (they can only contribute 0).
///
/// ```
/// use silkmoth_matching::sparse::{sparse_max_matching, Edge};
/// let edges = [
///     Edge { row: 0, col: 2, weight: 0.9 },
///     Edge { row: 5, col: 2, weight: 0.8 },
///     Edge { row: 5, col: 7, weight: 0.7 },
/// ];
/// // Row 0 takes col 2; row 5 falls back to col 7.
/// let score = sparse_max_matching(&edges);
/// assert!((score - 1.6).abs() < 1e-9);
/// ```
pub fn sparse_max_matching(edges: &[Edge]) -> f64 {
    if edges.is_empty() {
        return 0.0;
    }
    // Compact the incident rows and columns.
    let mut rows: Vec<usize> = edges.iter().map(|e| e.row).collect();
    let mut cols: Vec<usize> = edges.iter().map(|e| e.col).collect();
    rows.sort_unstable();
    rows.dedup();
    cols.sort_unstable();
    cols.dedup();
    let rpos = |r: usize| rows.binary_search(&r).expect("row present");
    let cpos = |c: usize| cols.binary_search(&c).expect("col present");
    let mut w = WeightMatrix::zeros(rows.len(), cols.len());
    for e in edges {
        debug_assert!(e.weight >= 0.0 && e.weight.is_finite());
        let (i, j) = (rpos(e.row), cpos(e.col));
        // Duplicate edges keep the maximum weight.
        if e.weight > w.get(i, j) {
            w.set(i, j, e.weight);
        }
    }
    max_weight_assignment(&w).score
}

/// Convenience: extracts the positive edges of a dense matrix and solves
/// sparsely. Equals `max_weight_assignment(w).score` for non-negative
/// matrices.
pub fn sparse_from_dense(w: &WeightMatrix) -> f64 {
    let mut edges = Vec::new();
    for i in 0..w.rows() {
        for j in 0..w.cols() {
            let v = w.get(i, j);
            if v > 0.0 {
                edges.push(Edge {
                    row: i,
                    col: j,
                    weight: v,
                });
            }
        }
    }
    sparse_max_matching(&edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_edges() {
        assert_eq!(sparse_max_matching(&[]), 0.0);
    }

    #[test]
    fn single_edge() {
        let score = sparse_max_matching(&[Edge {
            row: 42,
            col: 17,
            weight: 0.5,
        }]);
        assert_eq!(score, 0.5);
    }

    #[test]
    fn duplicate_edges_keep_max() {
        let score = sparse_max_matching(&[
            Edge {
                row: 0,
                col: 0,
                weight: 0.3,
            },
            Edge {
                row: 0,
                col: 0,
                weight: 0.8,
            },
        ]);
        assert_eq!(score, 0.8);
    }

    #[test]
    fn conflict_resolution() {
        // Two rows want the same column; the solver must split them.
        let score = sparse_max_matching(&[
            Edge {
                row: 0,
                col: 0,
                weight: 1.0,
            },
            Edge {
                row: 1,
                col: 0,
                weight: 0.9,
            },
            Edge {
                row: 1,
                col: 1,
                weight: 0.5,
            },
        ]);
        assert!((score - 1.5).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn prop_sparse_equals_dense(
            rows in 1usize..7,
            cols in 1usize..7,
            seed in proptest::collection::vec(0u32..100, 49),
            zero_cut in 20u32..80,
        ) {
            // Random matrix with a configurable zero fraction.
            let w = WeightMatrix::from_fn(rows, cols, |i, j| {
                let v = seed[i * 7 + j];
                if v < zero_cut { 0.0 } else { v as f64 / 100.0 }
            });
            let dense = max_weight_assignment(&w).score;
            let sparse = sparse_from_dense(&w);
            prop_assert!((dense - sparse).abs() < 1e-9, "dense={} sparse={}", dense, sparse);
        }
    }
}
