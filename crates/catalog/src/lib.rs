//! # silkmoth-catalog
//!
//! The multi-tenant collection registry's **data layer**: collection
//! names, per-tenant quota configuration, and the durable catalog
//! manifest that lets a server recover every named collection after
//! `kill -9`. The serving side (HTTP routes, per-collection engines)
//! lives in `silkmoth-server`; this crate is dependency-free so the
//! storage and telemetry layers can stay out of the picture.
//!
//! ## Names
//!
//! Collection names become directory names under the server's
//! `--data-dir`, so they are validated **before** any path is built:
//! `[a-z0-9_-]{1,64}`. The character set contains no `.` and no `/`,
//! which rejects `.`, `..`, and every path-traversal spelling with the
//! same rule that rejects uppercase or unicode — see
//! [`validate_name`].
//!
//! ## Manifest
//!
//! [`Manifest`] is the on-disk registry: one versioned binary file
//! (`catalog.manifest`) listing every collection with its shard count
//! and [`Quotas`]. Following the workspace's format-versioning rule it
//! carries a magic + version byte (readers reject unknown versions by
//! name) and a CRC-32 trailer, and [`Manifest::save`] writes it
//! atomically — tempfile, fsync, rename, directory fsync — so a crash
//! mid-update leaves either the old registry or the new one, never a
//! torn file.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// The longest valid collection name.
pub const NAME_MAX_LEN: usize = 64;

/// The collection unscoped routes serve; created implicitly, cannot be
/// dropped.
pub const DEFAULT_COLLECTION: &str = "default";

/// The manifest's file name inside the server's data directory.
pub const MANIFEST_FILE: &str = "catalog.manifest";

/// The current manifest encoding version (the byte after the magic).
pub const MANIFEST_VERSION: u8 = 1;

const MAGIC: &[u8; 4] = b"SMCT";

/// Why a collection name was rejected. Rendered into the server's
/// named `400` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameError {
    /// The empty string.
    Empty,
    /// Longer than [`NAME_MAX_LEN`] bytes (the offending length).
    TooLong(usize),
    /// A character outside `[a-z0-9_-]` (the first offender). Dots and
    /// slashes land here, which is what makes `.`/`..`/`../../etc`
    /// unspellable as collection names.
    BadChar(char),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "collection name is empty"),
            Self::TooLong(n) => write!(
                f,
                "collection name is {n} bytes, longer than the {NAME_MAX_LEN}-byte limit"
            ),
            Self::BadChar(c) => write!(
                f,
                "collection name contains {c:?}; allowed characters are [a-z0-9_-]"
            ),
        }
    }
}

impl std::error::Error for NameError {}

/// Validates a collection name against `[a-z0-9_-]{1,64}`. Names
/// become directory names, so everything that could escape or alias a
/// path — separators, dots, empty, overlong — is rejected here, before
/// any path is built from the name.
pub fn validate_name(name: &str) -> Result<(), NameError> {
    if name.is_empty() {
        return Err(NameError::Empty);
    }
    if name.len() > NAME_MAX_LEN {
        return Err(NameError::TooLong(name.len()));
    }
    match name
        .chars()
        .find(|c| !matches!(c, 'a'..='z' | '0'..='9' | '_' | '-'))
    {
        Some(c) => Err(NameError::BadChar(c)),
        None => Ok(()),
    }
}

/// Per-collection resource bounds. Every field is optional; `None`
/// means "no bound beyond the server-wide defaults". The server wires
/// each bound into machinery that already exists for the whole
/// process, so a quota'd tenant sees the same failure modes a loaded
/// server does:
///
/// * `max_inflight_updates` → the `503 + Retry-After` backpressure
///   path, scoped to this collection's own in-flight counter;
/// * `max_sets` / `max_bytes` → a named `403` on `POST /sets` once the
///   collection would exceed the bound;
/// * `deadline_cap_ms` → the cooperative search deadline (`504` on
///   exhaustion), capped together with any server-wide
///   `--search-timeout-ms`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Quotas {
    /// At most this many update requests in flight at once.
    pub max_inflight_updates: Option<u64>,
    /// At most this many live sets.
    pub max_sets: Option<u64>,
    /// At most this many bytes of live element text.
    pub max_bytes: Option<u64>,
    /// Cap every search in this collection to this wall-clock budget.
    pub deadline_cap_ms: Option<u64>,
}

impl Quotas {
    /// True when no field bounds anything.
    pub fn is_unbounded(&self) -> bool {
        *self == Self::default()
    }
}

/// One registered collection: its name, how many engine shards it
/// partitions across, and its quota configuration. The engine
/// *configuration* (metric, thresholds, tokenization) is deliberately
/// not here — every collection in one process shares the server's
/// `EngineConfig`, exactly as the snapshot format leaves it to the
/// CLI's `ShardSpec`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionSpec {
    /// The collection's name (validated).
    pub name: String,
    /// Engine shards for this collection (clamped to ≥ 1 by the
    /// engine).
    pub shards: u32,
    /// Per-tenant bounds.
    pub quotas: Quotas,
}

/// Why a manifest failed to decode or load.
#[derive(Debug)]
pub enum ManifestError {
    /// Filesystem failure reading or writing the manifest.
    Io(io::Error),
    /// The file does not start with the `SMCT` magic.
    BadMagic,
    /// A version this reader does not understand — rejected by name,
    /// never guessed at.
    UnknownVersion(u8),
    /// The CRC-32 trailer does not match the content.
    BadChecksum {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the content.
        computed: u32,
    },
    /// Structurally broken content (truncated field, duplicate or
    /// invalid name).
    Corrupt(String),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "catalog manifest io: {e}"),
            Self::BadMagic => write!(f, "not a catalog manifest (bad magic)"),
            Self::UnknownVersion(v) => write!(
                f,
                "catalog manifest version {v} is not supported (this reader understands \
                 version {MANIFEST_VERSION}); refusing to guess at the layout"
            ),
            Self::BadChecksum { stored, computed } => write!(
                f,
                "catalog manifest checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            Self::Corrupt(why) => write!(f, "catalog manifest corrupt: {why}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<io::Error> for ManifestError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// The durable collection registry: every collection the server must
/// recover on restart, in name order. The `default` collection is
/// listed like any other so the manifest is self-contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    collections: Vec<CollectionSpec>,
}

impl Manifest {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registered collections, in name order.
    pub fn collections(&self) -> &[CollectionSpec] {
        &self.collections
    }

    /// The spec registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&CollectionSpec> {
        self.collections
            .binary_search_by(|c| c.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.collections[i])
    }

    /// Registers (or replaces) a collection. The name must already be
    /// validated; storing an invalid name would poison every future
    /// load.
    pub fn upsert(&mut self, spec: CollectionSpec) -> Result<(), NameError> {
        validate_name(&spec.name)?;
        match self
            .collections
            .binary_search_by(|c| c.name.as_str().cmp(&spec.name))
        {
            Ok(i) => self.collections[i] = spec,
            Err(i) => self.collections.insert(i, spec),
        }
        Ok(())
    }

    /// Unregisters `name`; true when it was present.
    pub fn remove(&mut self, name: &str) -> bool {
        match self
            .collections
            .binary_search_by(|c| c.name.as_str().cmp(name))
        {
            Ok(i) => {
                self.collections.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Encodes the registry: magic, version byte, entry count, the
    /// entries, CRC-32 trailer over everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.collections.len() * 48);
        out.extend_from_slice(MAGIC);
        out.push(MANIFEST_VERSION);
        out.extend_from_slice(&(self.collections.len() as u32).to_le_bytes());
        for spec in &self.collections {
            out.extend_from_slice(&(spec.name.len() as u16).to_le_bytes());
            out.extend_from_slice(spec.name.as_bytes());
            out.extend_from_slice(&spec.shards.to_le_bytes());
            let q = &spec.quotas;
            let fields = [
                q.max_inflight_updates,
                q.max_sets,
                q.max_bytes,
                q.deadline_cap_ms,
            ];
            let mut mask = 0u8;
            for (bit, field) in fields.iter().enumerate() {
                if field.is_some() {
                    mask |= 1 << bit;
                }
            }
            out.push(mask);
            for field in fields.into_iter().flatten() {
                out.extend_from_slice(&field.to_le_bytes());
            }
        }
        out.extend_from_slice(&crc32(&out).to_le_bytes());
        out
    }

    /// Decodes a registry, checking magic, version, structure, and the
    /// CRC trailer. Every stored name is re-validated — a manifest is
    /// the one thing that could smuggle a bad name past the HTTP-layer
    /// check.
    pub fn decode(bytes: &[u8]) -> Result<Self, ManifestError> {
        let corrupt = |why: &str| ManifestError::Corrupt(why.into());
        if bytes.len() < MAGIC.len() + 1 {
            return Err(ManifestError::BadMagic);
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(ManifestError::BadMagic);
        }
        let version = bytes[MAGIC.len()];
        if version != MANIFEST_VERSION {
            return Err(ManifestError::UnknownVersion(version));
        }
        if bytes.len() < MAGIC.len() + 1 + 4 + 4 {
            return Err(corrupt("truncated before the entry count"));
        }
        let (content, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte split"));
        let computed = crc32(content);
        if stored != computed {
            return Err(ManifestError::BadChecksum { stored, computed });
        }
        let mut cursor = &content[MAGIC.len() + 1..];
        let mut take = |n: usize, what: &str| -> Result<&[u8], ManifestError> {
            if cursor.len() < n {
                return Err(ManifestError::Corrupt(format!("truncated {what}")));
            }
            let (head, rest) = cursor.split_at(n);
            cursor = rest;
            Ok(head)
        };
        let count = u32::from_le_bytes(take(4, "entry count")?.try_into().expect("4 bytes"));
        let mut manifest = Self::new();
        for i in 0..count {
            let name_len =
                u16::from_le_bytes(take(2, "name length")?.try_into().expect("2 bytes")) as usize;
            let name = std::str::from_utf8(take(name_len, "name")?)
                .map_err(|_| corrupt("name is not UTF-8"))?
                .to_owned();
            validate_name(&name).map_err(|e| ManifestError::Corrupt(format!("entry {i}: {e}")))?;
            let shards = u32::from_le_bytes(take(4, "shard count")?.try_into().expect("4 bytes"));
            let mask = take(1, "quota mask")?[0];
            if mask & !0b1111 != 0 {
                return Err(corrupt("unknown quota field bits set"));
            }
            let mut field = |bit: u8| -> Result<Option<u64>, ManifestError> {
                if mask & (1 << bit) == 0 {
                    return Ok(None);
                }
                Ok(Some(u64::from_le_bytes(
                    take(8, "quota value")?.try_into().expect("8 bytes"),
                )))
            };
            let quotas = Quotas {
                max_inflight_updates: field(0)?,
                max_sets: field(1)?,
                max_bytes: field(2)?,
                deadline_cap_ms: field(3)?,
            };
            if manifest.get(&name).is_some() {
                return Err(ManifestError::Corrupt(format!(
                    "duplicate collection {name:?}"
                )));
            }
            manifest
                .upsert(CollectionSpec {
                    name,
                    shards,
                    quotas,
                })
                .expect("name validated above");
        }
        if !cursor.is_empty() {
            return Err(corrupt("trailing bytes after the last entry"));
        }
        Ok(manifest)
    }

    /// Loads the manifest at `path`; `Ok(None)` when no file exists
    /// (a legacy or fresh data directory).
    pub fn load(path: &Path) -> Result<Option<Self>, ManifestError> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Self::decode(&bytes).map(Some)
    }

    /// Writes the manifest to `path` atomically: encode into a
    /// tempfile next to it, fsync, rename over the target, fsync the
    /// directory. A crash at any point leaves either the previous
    /// manifest or this one.
    pub fn save(&self, path: &Path) -> Result<(), ManifestError> {
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let tmp = path.with_extension("manifest.tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&self.encode())?;
            file.sync_all()?;
        }
        if let Err(e) = fs::rename(&tmp, path) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        if let Some(dir) = dir {
            // Make the rename itself durable; without this a crash can
            // lose the directory entry even though the data is synced.
            fs::File::open(dir)?.sync_all()?;
        }
        Ok(())
    }
}

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the same polynomial the
/// storage crate's snapshot/WAL trailers use, computed bitwise; the
/// manifest is far too small for a table to matter.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, shards: u32, quotas: Quotas) -> CollectionSpec {
        CollectionSpec {
            name: name.into(),
            shards,
            quotas,
        }
    }

    #[test]
    fn names_accept_the_documented_alphabet() {
        for good in ["a", "default", "tenant-7", "a_b-c9", &"x".repeat(64)] {
            assert_eq!(validate_name(good), Ok(()), "{good:?}");
        }
    }

    #[test]
    fn names_reject_traversal_dots_and_overlong() {
        assert_eq!(validate_name(""), Err(NameError::Empty));
        assert_eq!(validate_name("."), Err(NameError::BadChar('.')));
        assert_eq!(validate_name(".."), Err(NameError::BadChar('.')));
        assert_eq!(validate_name("../../etc"), Err(NameError::BadChar('.')));
        assert_eq!(validate_name("a/b"), Err(NameError::BadChar('/')));
        assert_eq!(validate_name("a\\b"), Err(NameError::BadChar('\\')));
        assert_eq!(validate_name("Tenant"), Err(NameError::BadChar('T')));
        assert_eq!(validate_name("a b"), Err(NameError::BadChar(' ')));
        assert_eq!(validate_name("naïve"), Err(NameError::BadChar('ï')));
        assert_eq!(validate_name(&"x".repeat(65)), Err(NameError::TooLong(65)));
    }

    #[test]
    fn manifest_round_trips_specs_and_quotas() {
        let mut m = Manifest::new();
        m.upsert(spec("default", 4, Quotas::default())).unwrap();
        m.upsert(spec(
            "tenant-a",
            7,
            Quotas {
                max_inflight_updates: Some(2),
                max_sets: Some(10_000),
                max_bytes: None,
                deadline_cap_ms: Some(250),
            },
        ))
        .unwrap();
        m.upsert(spec(
            "zz",
            1,
            Quotas {
                max_bytes: Some(u64::MAX),
                ..Quotas::default()
            },
        ))
        .unwrap();
        let back = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
        assert_eq!(
            back.get("tenant-a").unwrap().quotas.deadline_cap_ms,
            Some(250)
        );
        assert!(back.get("nope").is_none());
    }

    #[test]
    fn upsert_keeps_name_order_and_replaces_in_place() {
        let mut m = Manifest::new();
        m.upsert(spec("b", 1, Quotas::default())).unwrap();
        m.upsert(spec("a", 2, Quotas::default())).unwrap();
        m.upsert(spec("c", 3, Quotas::default())).unwrap();
        let names: Vec<&str> = m.collections().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        m.upsert(spec("b", 9, Quotas::default())).unwrap();
        assert_eq!(m.collections().len(), 3);
        assert_eq!(m.get("b").unwrap().shards, 9);
        assert!(m.remove("b"));
        assert!(!m.remove("b"));
        assert!(m.upsert(spec("../etc", 1, Quotas::default())).is_err());
    }

    #[test]
    fn unknown_versions_are_rejected_by_name() {
        let mut bytes = Manifest::new().encode();
        bytes[4] = 2; // bump the version byte
        let fixed = {
            // Re-seal the trailer so only the version is wrong.
            let n = bytes.len() - 4;
            let crc = crc32(&bytes[..n]).to_le_bytes();
            bytes[n..].copy_from_slice(&crc);
            bytes
        };
        match Manifest::decode(&fixed) {
            Err(ManifestError::UnknownVersion(2)) => {}
            other => panic!("expected UnknownVersion(2), got {other:?}"),
        }
        assert!(matches!(
            Manifest::decode(b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00"),
            Err(ManifestError::BadMagic)
        ));
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        let mut m = Manifest::new();
        m.upsert(spec(
            "tenant",
            3,
            Quotas {
                max_sets: Some(5),
                ..Quotas::default()
            },
        ))
        .unwrap();
        let good = m.encode();
        assert!(Manifest::decode(&good).is_ok());
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(
                Manifest::decode(&bad).is_err(),
                "flipping byte {i} went unnoticed"
            );
        }
        // Truncations too: no prefix may decode.
        for n in 0..good.len() {
            assert!(Manifest::decode(&good[..n]).is_err(), "prefix {n} decoded");
        }
    }

    #[test]
    fn save_load_round_trips_and_missing_file_is_none() {
        let dir = std::env::temp_dir().join(format!(
            "silkmoth-catalog-test-{}-{:p}",
            std::process::id(),
            &MAGIC
        ));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(MANIFEST_FILE);
        assert!(Manifest::load(&path).unwrap().is_none());
        let mut m = Manifest::new();
        m.upsert(spec("default", 4, Quotas::default())).unwrap();
        m.save(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), Some(m.clone()));
        // A second save replaces atomically (no tempfile left behind).
        m.upsert(spec("extra", 2, Quotas::default())).unwrap();
        m.save(&path).unwrap();
        assert_eq!(
            Manifest::load(&path).unwrap().unwrap().collections().len(),
            2
        );
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != MANIFEST_FILE)
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
