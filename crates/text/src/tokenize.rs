//! Tokenizers: whitespace words, q-grams, and q-chunks (§3, §7.1).
//!
//! For edit similarity the paper pads each element with `q − 1` special
//! characters *at the end* (§3, footnote 3). With that padding an element of
//! character length `L` has exactly `L` q-grams (start positions
//! `0..L`) and `⌈L/q⌉` q-chunks (start positions `0, q, 2q, …`). Because
//! every chunk start position `p = i·q` satisfies `p ≤ L − 1` whenever the
//! chunk exists, **every q-chunk is also a q-gram**, which is what lets
//! signature q-chunks be probed against a q-gram inverted index.

/// Sentinel character used to pad elements for q-gram extraction.
///
/// `\u{1}` is chosen because it never appears in whitespace-tokenized text
/// and sorts below every printable character.
pub const PAD: char = '\u{1}';

/// Splits an element on Unicode whitespace.
///
/// This is the tokenizer used with Jaccard similarity: each
/// whitespace-delimited word becomes one token (§3).
///
/// ```
/// use silkmoth_text::whitespace_tokens;
/// assert_eq!(whitespace_tokens("77 Mass Ave"), vec!["77", "Mass", "Ave"]);
/// assert_eq!(whitespace_tokens("  a \t b\n"), vec!["a", "b"]);
/// ```
pub fn whitespace_tokens(s: &str) -> Vec<&str> {
    s.split_whitespace().collect()
}

/// Returns the padded character sequence of `s`: its chars followed by
/// `pad_len` copies of [`PAD`].
fn padded_chars(s: &str, pad_len: usize) -> Vec<char> {
    let mut chars: Vec<char> = s.chars().collect();
    chars.extend(std::iter::repeat_n(PAD, pad_len));
    chars
}

/// Extracts all q-grams of `s`, after padding the end with `q − 1`
/// sentinels.
///
/// An element of character length `L ≥ 1` yields exactly `L` q-grams.
/// Empty input yields no q-grams. `q` must be at least 1.
///
/// ```
/// use silkmoth_text::qgrams;
/// let g = qgrams("abcd", 3);
/// assert_eq!(g.len(), 4);
/// assert_eq!(g[0], "abc");
/// assert_eq!(g[1], "bcd");
/// // The last two grams run into the padding.
/// assert_eq!(g[2], format!("cd{}", silkmoth_text::PAD));
/// ```
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q-gram length must be at least 1");
    let n = s.chars().count();
    if n == 0 {
        return Vec::new();
    }
    let chars = padded_chars(s, q - 1);
    (0..n).map(|i| chars[i..i + q].iter().collect()).collect()
}

/// Start positions (in q-grams) of the q-chunks of a string with `len`
/// characters: `0, q, 2q, …` while the position is below `len`.
///
/// ```
/// use silkmoth_text::qchunk_positions;
/// assert_eq!(qchunk_positions(7, 3), vec![0, 3, 6]);
/// assert_eq!(qchunk_positions(6, 3), vec![0, 3]);
/// assert_eq!(qchunk_positions(0, 3), Vec::<usize>::new());
/// ```
pub fn qchunk_positions(len: usize, q: usize) -> Vec<usize> {
    assert!(q >= 1, "q-chunk length must be at least 1");
    (0..len).step_by(q).collect()
}

/// Extracts the `⌈L/q⌉` non-overlapping q-chunks of `s` (§7.1), padded so
/// the final chunk is always `q` characters long.
///
/// Every returned chunk equals the q-gram starting at the same position,
/// i.e. `qchunks(s, q)[i] == qgrams(s, q)[i * q]`.
///
/// ```
/// use silkmoth_text::qchunks;
/// assert_eq!(qchunks("abcdef", 3), vec!["abc".to_string(), "def".to_string()]);
/// assert_eq!(qchunks("abcde", 3).len(), 2);
/// ```
pub fn qchunks(s: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q-chunk length must be at least 1");
    let n = s.chars().count();
    if n == 0 {
        return Vec::new();
    }
    let chars = padded_chars(s, q - 1);
    qchunk_positions(n, q)
        .into_iter()
        .map(|p| chars[p..p + q].iter().collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_basic() {
        assert_eq!(
            whitespace_tokens("50 Vassar St MA"),
            vec!["50", "Vassar", "St", "MA"]
        );
    }

    #[test]
    fn whitespace_empty_and_blank() {
        assert!(whitespace_tokens("").is_empty());
        assert!(whitespace_tokens("   \t\n ").is_empty());
    }

    #[test]
    fn whitespace_collapses_runs() {
        assert_eq!(whitespace_tokens("a  b   c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn qgram_count_equals_char_len() {
        for (s, q) in [("abc", 2), ("abcdef", 3), ("x", 5), ("hello", 4)] {
            assert_eq!(qgrams(s, q).len(), s.chars().count(), "s={s:?} q={q}");
        }
    }

    #[test]
    fn qgram_paper_example() {
        // §3: the 4-grams of "50 Vassar St MA" are "50 V", "0 Va", …
        let g = qgrams("50 Vassar St MA", 4);
        assert_eq!(g[0], "50 V");
        assert_eq!(g[1], "0 Va");
        assert_eq!(g.len(), 15);
    }

    #[test]
    fn qgram_all_have_length_q() {
        for q in 1..=6 {
            for g in qgrams("silkmoth", q) {
                assert_eq!(g.chars().count(), q);
            }
        }
    }

    #[test]
    fn qgram_empty_input() {
        assert!(qgrams("", 3).is_empty());
    }

    #[test]
    fn qgram_unicode() {
        let g = qgrams("héllo", 2);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], "hé");
        assert_eq!(g[1], "él");
    }

    #[test]
    fn qchunk_count_is_ceil() {
        for (len, q, want) in [(6, 3, 2), (7, 3, 3), (1, 3, 1), (9, 3, 3), (10, 4, 3)] {
            let s: String = "abcdefghij".chars().take(len).collect();
            assert_eq!(qchunks(&s, q).len(), want, "len={len} q={q}");
            assert_eq!(qchunk_positions(len, q).len(), want);
        }
    }

    #[test]
    fn qchunks_are_qgrams_at_chunk_positions() {
        for q in 1..=5 {
            let s = "related sets";
            let grams = qgrams(s, q);
            let chunks = qchunks(s, q);
            let positions = qchunk_positions(s.chars().count(), q);
            assert_eq!(chunks.len(), positions.len());
            for (chunk, &p) in chunks.iter().zip(&positions) {
                assert_eq!(chunk, &grams[p], "q={q} p={p}");
            }
        }
    }

    #[test]
    fn qchunks_cover_whole_string() {
        let s = "abcdefg";
        let joined: String = qchunks(s, 3).concat();
        assert!(joined.starts_with(s));
        assert_eq!(joined.chars().count(), 9); // padded to multiple of q
    }

    #[test]
    fn q_of_one_chunks_equal_grams() {
        let s = "moth";
        assert_eq!(qchunks(s, 1), qgrams(s, 1));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_q_panics() {
        qgrams("abc", 0);
    }
}
