//! # silkmoth-text
//!
//! Tokenizers and element-level similarity functions for the SilkMoth
//! related-set discovery system (Deng, Kim, Madden, Stonebraker — VLDB 2017).
//!
//! SilkMoth models a *set* as a collection of *elements* (short strings) and
//! each element as a bag of *tokens*. Two tokenizations are supported,
//! matching the paper's §3:
//!
//! * **whitespace words** — used with [Jaccard similarity](sim::jaccard_str);
//! * **q-grams** — every `q`-length substring of the element (padded with
//!   `q-1` sentinel characters at the end), used with
//!   [edit similarity](sim::eds). Signatures for edit similarity are built
//!   from the non-overlapping **q-chunks** (§7.1), which — thanks to the
//!   padding — are always a subset of the q-grams.
//!
//! The similarity functions (§2.1) all return a score in `[0, 1]`:
//!
//! * [`sim::jaccard_sorted`] — `|x ∩ y| / |x ∪ y|` over token-id slices;
//! * [`sim::eds`] — `1 − 2·LD/(|x|+|y|+LD)` (Li & Liu normalized metric);
//! * [`sim::neds`] — `1 − LD/max(|x|,|y|)`;
//!
//! plus the α-clamped variant `φ_α` ([`sim::clamp_alpha`]) which zeroes
//! scores below a similarity threshold α (§2.1).

pub mod lev;
pub mod sim;
pub mod tokenize;

pub use sim::{clamp_alpha, eds, jaccard_sorted, jaccard_str, neds, SimilarityFunction};
pub use tokenize::{qchunk_positions, qchunks, qgrams, whitespace_tokens, PAD};

/// Identifier of an interned token. Ids are assigned by the collection
/// builder in decreasing order of global frequency (the paper's Table 2
/// convention: `t1` is the most frequent token).
pub type TokenId = u32;
