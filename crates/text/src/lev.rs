//! Levenshtein distance with a banded, threshold-bounded variant.
//!
//! The verification step of SilkMoth computes `O(n·m)` element similarities
//! per candidate pair, so the edit-distance kernel matters. Two entry points
//! are provided:
//!
//! * [`levenshtein`] — the classic two-row dynamic program, `O(|a|·|b|)`;
//! * [`levenshtein_bounded`] — a banded dynamic program that gives up (and
//!   returns `None`) as soon as the distance provably exceeds `max`,
//!   running in `O(max · min(|a|,|b|))`.
//!
//! Both operate on Unicode scalar values (`char`s), consistent with the
//! paper's definition of string length.

/// Classic Levenshtein distance between `a` and `b` over chars.
///
/// Insertions, deletions, and substitutions all cost 1 (§2.1, reference \[21]).
///
/// ```
/// use silkmoth_text::lev::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// assert_eq!(levenshtein("same", "same"), 0);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_chars(&a, &b)
}

/// Levenshtein distance over pre-collected char slices.
///
/// Useful when the caller has already materialized the char buffers (the
/// verification loop does this once per element).
pub fn levenshtein_chars(a: &[char], b: &[char]) -> usize {
    // Ensure `b` is the shorter side so the DP rows are minimal.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur: Vec<usize> = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Banded Levenshtein: returns `Some(d)` if `d = LD(a,b) ≤ max`, otherwise
/// `None`.
///
/// The band has half-width `max`; cells outside it can only correspond to
/// alignments with more than `max` indels, so they are skipped. A cheap
/// length check (`||a|−|b|| > max`) short-circuits first, because the edit
/// distance is at least the length difference.
///
/// ```
/// use silkmoth_text::lev::levenshtein_bounded;
/// assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
/// assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
/// assert_eq!(levenshtein_bounded("abc", "abc", 0), Some(0));
/// ```
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_bounded_chars(&a, &b, max)
}

/// Banded Levenshtein over pre-collected char slices. See
/// [`levenshtein_bounded`].
pub fn levenshtein_bounded_chars(a: &[char], b: &[char], max: usize) -> Option<usize> {
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let (n, m) = (a.len(), b.len());
    if n - m > max {
        return None;
    }
    if m == 0 {
        return Some(n);
    }
    const BIG: usize = usize::MAX / 2;
    // Row i covers columns j in [lo, hi] with |i - j| bounded by the band.
    let mut prev = vec![BIG; m + 1];
    for (j, cell) in prev.iter_mut().enumerate().take(max.min(m) + 1) {
        *cell = j;
    }
    let mut cur = vec![BIG; m + 1];
    for (i, &ca) in a.iter().enumerate() {
        let row = i + 1;
        let lo = row.saturating_sub(max);
        let hi = (row + max).min(m);
        if lo > hi {
            return None;
        }
        cur[lo.saturating_sub(1)] = BIG;
        if lo == 0 {
            cur[0] = row;
        } else {
            cur[lo - 1] = BIG;
        }
        let mut row_min = BIG;
        let start = lo.max(1);
        for j in start..=hi {
            let cb = b[j - 1];
            let sub = prev[j - 1] + usize::from(ca != cb);
            let del = if prev[j] >= BIG { BIG } else { prev[j] + 1 };
            let ins = if cur[j - 1] >= BIG {
                BIG
            } else {
                cur[j - 1] + 1
            };
            let v = sub.min(del).min(ins);
            cur[j] = v;
            row_min = row_min.min(v);
        }
        if lo == 0 {
            row_min = row_min.min(cur[0]);
        }
        if row_min > max {
            return None;
        }
        // Invalidate the cell just beyond the band so the next row's
        // neighbour reads see BIG, not a stale value.
        if hi < m {
            cur[hi + 1] = BIG;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[m];
    (d <= max).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("a", ""), 1);
        assert_eq!(levenshtein("", "a"), 1);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", "axc"), 1);
    }

    #[test]
    fn paper_example_distance() {
        // §2.1: LD("50 Vassar St MA", "50 Vassar Street MA") = 4
        assert_eq!(levenshtein("50 Vassar St MA", "50 Vassar Street MA"), 4);
    }

    #[test]
    fn symmetric() {
        assert_eq!(
            levenshtein("database", "databases"),
            levenshtein("databases", "database")
        );
    }

    #[test]
    fn unicode_chars_count_once() {
        assert_eq!(levenshtein("héllo", "hello"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn bounded_agrees_when_within() {
        let pairs = [
            ("kitten", "sitting"),
            ("abcdef", "abcdef"),
            ("", "xyz"),
            ("similar", "dissimilar"),
        ];
        for (a, b) in pairs {
            let d = levenshtein(a, b);
            for max in d..d + 3 {
                assert_eq!(levenshtein_bounded(a, b, max), Some(d), "{a:?} {b:?} {max}");
            }
            if d > 0 {
                assert_eq!(levenshtein_bounded(a, b, d - 1), None);
            }
        }
    }

    #[test]
    fn bounded_zero_max() {
        assert_eq!(levenshtein_bounded("same", "same", 0), Some(0));
        assert_eq!(levenshtein_bounded("same", "sane", 0), None);
    }

    #[test]
    fn bounded_length_gap_short_circuit() {
        assert_eq!(levenshtein_bounded("ab", "abcdefgh", 3), None);
    }

    #[test]
    fn distance_at_least_length_difference() {
        assert_eq!(levenshtein("aaaa", "aaaaaaa"), 3);
    }

    proptest! {
        #[test]
        fn prop_triangle_inequality(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn prop_symmetry_and_identity(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            prop_assert_eq!(levenshtein(&a, &a), 0);
            if a != b {
                prop_assert!(levenshtein(&a, &b) >= 1);
            }
        }

        #[test]
        fn prop_bounded_matches_classic(a in "[a-c]{0,12}", b in "[a-c]{0,12}", max in 0usize..6) {
            let d = levenshtein(&a, &b);
            let got = levenshtein_bounded(&a, &b, max);
            if d <= max {
                prop_assert_eq!(got, Some(d));
            } else {
                prop_assert_eq!(got, None);
            }
        }

        #[test]
        fn prop_bounded_by_max_len(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            let d = levenshtein(&a, &b);
            let (la, lb) = (a.chars().count(), b.chars().count());
            prop_assert!(d <= la.max(lb));
            prop_assert!(d >= la.abs_diff(lb));
        }
    }
}
