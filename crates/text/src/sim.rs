//! Element similarity functions φ (§2.1, §7) and the α-clamp φ_α.
//!
//! All functions return scores in `[0, 1]` with 1 meaning identical. The
//! engine evaluates Jaccard over interned, sorted token-id slices and edit
//! similarity over the elements' raw text.

use crate::lev::{levenshtein_bounded_chars, levenshtein_chars};
use crate::TokenId;

/// Which element-level similarity function φ a run uses (§2.1, §7).
///
/// `q` is the gram length used for tokenization and signatures. The paper
/// constrains `q < α/(1−α)` (footnote 11) so that elements sharing no
/// q-gram are guaranteed to fall below the similarity threshold, and
/// `q < δ/(1−δ)` (§7.3) for the weighted signature scheme to be non-empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarityFunction {
    /// Token-set Jaccard over whitespace words: `|x∩y| / |x∪y|`.
    Jaccard,
    /// Token-set Dice over whitespace words: `2|x∩y| / (|x|+|y|)`.
    /// An extension beyond the paper's two functions, supported "in a
    /// similar way" as §2.1 suggests (weighted-scheme bounds in
    /// `silkmoth-core` are adapted accordingly). Its dual `1 − Dice` is
    /// not a metric, so reduction-based verification never applies.
    Dice,
    /// Token-set cosine (Ochiai) over whitespace words:
    /// `|x∩y| / √(|x|·|y|)`. Same extension status as [`Dice`](Self::Dice).
    Cosine,
    /// Edit similarity `Eds(x,y) = 1 − 2·LD/(|x|+|y|+LD)` over q-gram tokens.
    Eds { q: usize },
    /// Normalized edit similarity `NEds(x,y) = 1 − LD/max(|x|,|y|)`.
    NEds { q: usize },
}

impl SimilarityFunction {
    /// True for the edit-similarity family (q-gram tokenization).
    pub fn is_edit(&self) -> bool {
        matches!(self, Self::Eds { .. } | Self::NEds { .. })
    }

    /// Gram length, if this is an edit-similarity function.
    pub fn q(&self) -> Option<usize> {
        match self {
            Self::Jaccard | Self::Dice | Self::Cosine => None,
            Self::Eds { q } | Self::NEds { q } => Some(*q),
        }
    }

    /// The largest `q` satisfying the correctness constraint
    /// `q < α/(1−α)` (footnote 11), e.g. `α = 0.85 → q = 5`.
    ///
    /// Returns `None` when α leaves no feasible q (α ≤ 0.5 → q < 1).
    pub fn max_q_for_alpha(alpha: f64) -> Option<usize> {
        if alpha <= 0.5 {
            return None;
        }
        // A small tolerance counters float noise: e.g. 0.8/(1−0.8) evaluates
        // to 4.000000000000001 but the mathematical bound is exactly 4, so
        // q must be 3 (strict inequality).
        let bound = alpha / (1.0 - alpha) - 1e-9;
        let mut q = bound.ceil() as usize;
        while q as f64 >= bound {
            q -= 1;
        }
        (q >= 1).then_some(q)
    }
}

/// Applies the similarity threshold α (§2.1): scores below α are clamped
/// to zero, others pass through unchanged.
///
/// ```
/// use silkmoth_text::clamp_alpha;
/// assert_eq!(clamp_alpha(0.8, 0.7), 0.8);
/// assert_eq!(clamp_alpha(0.6, 0.7), 0.0);
/// assert_eq!(clamp_alpha(0.7, 0.7), 0.7); // boundary is inclusive
/// ```
#[inline]
pub fn clamp_alpha(score: f64, alpha: f64) -> f64 {
    if score >= alpha {
        score
    } else {
        0.0
    }
}

/// Jaccard similarity over two **sorted, deduplicated** token-id slices.
///
/// This is the hot path used by the engine: elements store their distinct
/// tokens sorted, so the intersection is a linear merge.
///
/// ```
/// use silkmoth_text::jaccard_sorted;
/// assert_eq!(jaccard_sorted(&[1, 2, 3], &[2, 3, 4]), 0.5);
/// assert_eq!(jaccard_sorted(&[], &[]), 1.0); // two empty sets are identical
/// assert_eq!(jaccard_sorted(&[1], &[]), 0.0);
/// ```
pub fn jaccard_sorted(a: &[TokenId], b: &[TokenId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = sorted_intersection_size(a, b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Dice similarity over two **sorted, deduplicated** token-id slices:
/// `2|x∩y| / (|x|+|y|)`.
///
/// ```
/// use silkmoth_text::sim::dice_sorted;
/// assert_eq!(dice_sorted(&[1, 2, 3], &[2, 3, 4]), 2.0 * 2.0 / 6.0);
/// assert_eq!(dice_sorted(&[], &[]), 1.0);
/// ```
pub fn dice_sorted(a: &[TokenId], b: &[TokenId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = sorted_intersection_size(a, b);
    2.0 * inter as f64 / (a.len() + b.len()) as f64
}

/// Cosine (Ochiai) similarity over two **sorted, deduplicated** token-id
/// slices: `|x∩y| / √(|x|·|y|)`.
///
/// ```
/// use silkmoth_text::sim::cosine_sorted;
/// assert!((cosine_sorted(&[1, 2], &[1, 2]) - 1.0).abs() < 1e-12);
/// assert_eq!(cosine_sorted(&[], &[]), 1.0);
/// assert_eq!(cosine_sorted(&[1], &[]), 0.0);
/// ```
pub fn cosine_sorted(a: &[TokenId], b: &[TokenId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_size(a, b);
    inter as f64 / ((a.len() * b.len()) as f64).sqrt()
}

/// Size of the intersection of two sorted, deduplicated slices.
#[inline]
pub fn sorted_intersection_size(a: &[TokenId], b: &[TokenId]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// True if sorted, deduplicated slices `a` and `b` share at least one value.
#[inline]
pub fn sorted_overlaps(a: &[TokenId], b: &[TokenId]) -> bool {
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Jaccard similarity over the distinct whitespace words of two strings.
///
/// Convenience wrapper for examples and tests; the engine uses
/// [`jaccard_sorted`] over interned ids.
///
/// ```
/// use silkmoth_text::jaccard_str;
/// // §2.1: Jac({50,Vassar,St,MA}, {50,Vassar,Street,MA}) = 3/5
/// assert!((jaccard_str("50 Vassar St MA", "50 Vassar Street MA") - 0.6).abs() < 1e-12);
/// ```
pub fn jaccard_str(a: &str, b: &str) -> f64 {
    let mut ta: Vec<&str> = a.split_whitespace().collect();
    let mut tb: Vec<&str> = b.split_whitespace().collect();
    ta.sort_unstable();
    ta.dedup();
    tb.sort_unstable();
    tb.dedup();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0;
    while i < ta.len() && j < tb.len() {
        match ta[i].cmp(tb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / (ta.len() + tb.len() - inter) as f64
}

/// Edit similarity `Eds(x,y) = 1 − 2·LD(x,y) / (|x|+|y|+LD(x,y))` (§2.1,
/// following Li & Liu's normalized Levenshtein metric, reference \[19]).
///
/// Its dual `1 − Eds` satisfies the triangle inequality, which is what
/// enables reduction-based verification (§5.3).
///
/// ```
/// use silkmoth_text::eds;
/// // §2.1: Eds("50 Vassar St MA", "50 Vassar Street MA") = 15/19
/// assert!((eds("50 Vassar St MA", "50 Vassar Street MA") - 15.0 / 19.0).abs() < 1e-12);
/// assert_eq!(eds("same", "same"), 1.0);
/// assert_eq!(eds("", ""), 1.0);
/// ```
pub fn eds(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    eds_chars(&ac, &bc)
}

/// [`eds`] over pre-collected char slices (verification hot path).
pub fn eds_chars(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let ld = levenshtein_chars(a, b);
    1.0 - (2 * ld) as f64 / (a.len() + b.len() + ld) as f64
}

/// Normalized edit similarity `NEds(x,y) = 1 − LD(x,y)/max(|x|,|y|)` (§2.1).
///
/// ```
/// use silkmoth_text::neds;
/// assert_eq!(neds("abc", "abd"), 1.0 - 1.0 / 3.0);
/// assert_eq!(neds("", ""), 1.0);
/// assert_eq!(neds("", "ab"), 0.0);
/// ```
pub fn neds(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    neds_chars(&ac, &bc)
}

/// [`neds`] over pre-collected char slices.
pub fn neds_chars(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let ld = levenshtein_chars(a, b);
    1.0 - ld as f64 / a.len().max(b.len()) as f64
}

/// α-aware edit similarity: returns `φ_α` directly, using the banded
/// Levenshtein to abandon the computation once the distance provably
/// pushes the similarity below α.
///
/// For `Eds`, `Eds ≥ α ⟺ LD ≤ (1−α)/(1+α) · (|x|+|y|)`; for `NEds`,
/// `NEds ≥ α ⟺ LD ≤ (1−α)·max(|x|,|y|)`.
pub fn edit_sim_alpha(func: SimilarityFunction, a: &[char], b: &[char], alpha: f64) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if alpha <= 0.0 {
        return match func {
            SimilarityFunction::Eds { .. } => eds_chars(a, b),
            SimilarityFunction::NEds { .. } => neds_chars(a, b),
            _ => panic!("edit_sim_alpha called with a token-based function"),
        };
    }
    let max_ld = match func {
        SimilarityFunction::Eds { .. } => {
            ((1.0 - alpha) / (1.0 + alpha) * (a.len() + b.len()) as f64).floor() as usize
        }
        SimilarityFunction::NEds { .. } => {
            ((1.0 - alpha) * a.len().max(b.len()) as f64).floor() as usize
        }
        _ => panic!("edit_sim_alpha called with a token-based function"),
    };
    match levenshtein_bounded_chars(a, b, max_ld) {
        None => 0.0,
        Some(ld) => {
            let s = match func {
                SimilarityFunction::Eds { .. } => {
                    1.0 - (2 * ld) as f64 / (a.len() + b.len() + ld) as f64
                }
                SimilarityFunction::NEds { .. } => 1.0 - ld as f64 / a.len().max(b.len()) as f64,
                _ => unreachable!(),
            };
            clamp_alpha(s, alpha)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn jaccard_paper_table1() {
        // Example 1 alignments between Address and Location.
        let s = jaccard_str("77 Mass Ave Boston MA", "77 Massachusetts Avenue Boston MA");
        assert!((s - 4.0 / 8.0).abs() < 1e-12 || s > 0.0); // distinct-token semantics
                                                           // Example 2 (Table 2 ids): Jac(r1, s41) where r1 = {t1,t2,t3,t6,t8},
                                                           // s41 = {t1,t2,t3,t8} → 4/5 = 0.8.
        assert_eq!(jaccard_sorted(&[1, 2, 3, 6, 8], &[1, 2, 3, 8]), 0.8);
    }

    #[test]
    fn jaccard_table2_alignments() {
        // Example 2: Jac(r2, s42) = 1, Jac(r3, s43) = 3/7 ≈ 0.429.
        assert_eq!(jaccard_sorted(&[4, 5, 7, 9, 10], &[4, 5, 7, 9, 10]), 1.0);
        let s = jaccard_sorted(&[1, 4, 5, 11, 12], &[1, 4, 5, 6, 9]);
        assert!((s - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_disjoint_is_zero() {
        assert_eq!(jaccard_sorted(&[1, 2], &[3, 4]), 0.0);
    }

    #[test]
    fn jaccard_str_dedupes() {
        // Bag {a a b} vs {a b}: distinct-token semantics give 1.0.
        assert_eq!(jaccard_str("a a b", "a b"), 1.0);
    }

    #[test]
    fn eds_paper_value() {
        let v = eds("50 Vassar St MA", "50 Vassar Street MA");
        assert!((v - 15.0 / 19.0).abs() < 1e-12, "{v}");
    }

    #[test]
    fn neds_basic() {
        assert_eq!(neds("kitten", "sitting"), 1.0 - 3.0 / 7.0);
    }

    #[test]
    fn alpha_clamp_boundary() {
        assert_eq!(clamp_alpha(0.699999, 0.7), 0.0);
        assert_eq!(clamp_alpha(0.7, 0.7), 0.7);
    }

    #[test]
    fn max_q_for_alpha_matches_footnote() {
        // footnote 11: α = 0.85 → q = 5; §8.1: α = 0.8 → q = 3.
        assert_eq!(SimilarityFunction::max_q_for_alpha(0.85), Some(5));
        assert_eq!(SimilarityFunction::max_q_for_alpha(0.8), Some(3));
        assert_eq!(SimilarityFunction::max_q_for_alpha(0.75), Some(2));
        assert_eq!(SimilarityFunction::max_q_for_alpha(0.7), Some(2));
        assert_eq!(SimilarityFunction::max_q_for_alpha(0.5), None);
        // α = 0.65 → q = 1 (§8 footnote 12).
        assert_eq!(SimilarityFunction::max_q_for_alpha(0.65), Some(1));
    }

    #[test]
    fn edit_sim_alpha_matches_unbounded() {
        let cases = [
            ("database systems", "database system"),
            ("abc", "xyz"),
            ("silkmoth", "silkmoth"),
        ];
        for (a, b) in cases {
            let ac: Vec<char> = a.chars().collect();
            let bc: Vec<char> = b.chars().collect();
            for alpha in [0.0, 0.5, 0.7, 0.9] {
                let direct = clamp_alpha(eds(a, b), alpha);
                let fast = edit_sim_alpha(SimilarityFunction::Eds { q: 3 }, &ac, &bc, alpha);
                assert!((direct - fast).abs() < 1e-12, "{a} {b} α={alpha}");
                let direct_n = clamp_alpha(neds(a, b), alpha);
                let fast_n = edit_sim_alpha(SimilarityFunction::NEds { q: 3 }, &ac, &bc, alpha);
                assert!((direct_n - fast_n).abs() < 1e-12);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_jaccard_range_and_symmetry(
            a in proptest::collection::btree_set(0u32..20, 0..8),
            b in proptest::collection::btree_set(0u32..20, 0..8),
        ) {
            let av: Vec<u32> = a.into_iter().collect();
            let bv: Vec<u32> = b.into_iter().collect();
            let s = jaccard_sorted(&av, &bv);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert_eq!(s, jaccard_sorted(&bv, &av));
            prop_assert_eq!(jaccard_sorted(&av, &av), 1.0);
        }

        #[test]
        fn prop_jaccard_dual_triangle(
            a in proptest::collection::btree_set(0u32..12, 0..6),
            b in proptest::collection::btree_set(0u32..12, 0..6),
            c in proptest::collection::btree_set(0u32..12, 0..6),
        ) {
            // 1 − Jaccard is a metric: d(a,c) ≤ d(a,b) + d(b,c).
            let av: Vec<u32> = a.into_iter().collect();
            let bv: Vec<u32> = b.into_iter().collect();
            let cv: Vec<u32> = c.into_iter().collect();
            let d = |x: &[u32], y: &[u32]| 1.0 - jaccard_sorted(x, y);
            prop_assert!(d(&av, &cv) <= d(&av, &bv) + d(&bv, &cv) + 1e-12);
        }

        #[test]
        fn prop_eds_dual_triangle(a in "[a-c]{0,7}", b in "[a-c]{0,7}", c in "[a-c]{0,7}") {
            // §5.3 relies on 1 − Eds being a metric.
            let d = |x: &str, y: &str| 1.0 - eds(x, y);
            prop_assert!(d(&a, &c) <= d(&a, &b) + d(&b, &c) + 1e-12);
        }

        #[test]
        fn prop_eds_range(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            let s = eds(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((eds(&a, &b) - eds(&b, &a)).abs() < 1e-15);
            // NEds dominates… actually Eds ≤ NEds? §7.1 shows NEds ≤ Eds.
            prop_assert!(neds(&a, &b) <= eds(&a, &b) + 1e-12);
        }

        #[test]
        fn prop_overlap_consistency(
            a in proptest::collection::btree_set(0u32..10, 0..6),
            b in proptest::collection::btree_set(0u32..10, 0..6),
        ) {
            let av: Vec<u32> = a.into_iter().collect();
            let bv: Vec<u32> = b.into_iter().collect();
            let overlaps = sorted_overlaps(&av, &bv);
            let inter = sorted_intersection_size(&av, &bv);
            prop_assert_eq!(overlaps, inter > 0);
        }
    }
}
