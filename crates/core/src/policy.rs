//! Auto-compaction and checkpoint policy for mutated collections.
//!
//! Removal tombstones in O(1) and appends keep the dictionary's (then
//! increasingly stale) frequency order, so a heavily-mutated collection
//! prunes less effectively until [`Update::Compact`] rewrites it (see
//! `silkmoth-collection`'s docs). A [`CompactionPolicy`] decides *when*
//! that rewrite — and, for durable stores, when a snapshot checkpoint —
//! should happen, from two observable counters:
//!
//! * the **tombstone ratio** `dead / slots` of the collection, and
//! * the **write-ahead-log length** (records since the last checkpoint)
//!   for stores that keep one (`silkmoth-storage`).
//!
//! The policy is plain arithmetic over those counters, so it works
//! unchanged for an in-memory [`Engine`](crate::Engine) or
//! `ShardedEngine` (compaction only) and for a durable `Store`
//! (compaction + snapshots). Both thresholds are *at-least* bounds: a
//! value exactly at the threshold triggers.

/// Threshold-based decision rule for automatic [`Update::Compact`]
/// (tombstone ratio) and automatic snapshots (WAL length).
///
/// [`Update::Compact`]: crate::Update::Compact
///
/// ```
/// use silkmoth_core::CompactionPolicy;
///
/// let policy = CompactionPolicy::default()
///     .compact_at_dead_ratio(0.25)
///     .snapshot_at_wal_records(1000);
/// assert!(!policy.should_compact(8, 10)); // 2/10 dead: below threshold
/// assert!(policy.should_compact(7, 10)); // 3/10 dead: over threshold
/// assert!(policy.should_snapshot(1000)); // exactly at the threshold
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompactionPolicy {
    /// Compact when `dead / slots >= ratio` (with at least one dead
    /// slot). `None` disables automatic compaction.
    pub max_dead_ratio: Option<f64>,
    /// Snapshot when the WAL holds at least this many records (and at
    /// least one). `None` disables automatic snapshots.
    pub max_wal_records: Option<u64>,
    /// Seal the active WAL segment and start a new one once it holds at
    /// least this many bytes. `None` keeps one unbounded segment per
    /// generation.
    pub max_segment_bytes: Option<u64>,
}

impl CompactionPolicy {
    /// The inert policy: never compacts, never snapshots, never seals.
    pub const DISABLED: Self = Self {
        max_dead_ratio: None,
        max_wal_records: None,
        max_segment_bytes: None,
    };

    /// Enables automatic compaction at the given dead-slot ratio
    /// (clamped to `[0, 1]`; a ratio of 0 compacts as soon as any slot
    /// is dead).
    pub fn compact_at_dead_ratio(mut self, ratio: f64) -> Self {
        self.max_dead_ratio = Some(ratio.clamp(0.0, 1.0));
        self
    }

    /// Enables automatic snapshots once the WAL holds `records` records
    /// (a threshold of 0 behaves like 1: an empty WAL never snapshots).
    pub fn snapshot_at_wal_records(mut self, records: u64) -> Self {
        self.max_wal_records = Some(records);
        self
    }

    /// Enables WAL segmentation: the store seals its active segment and
    /// starts a new one once the segment file reaches `bytes` bytes (a
    /// threshold of 0 behaves like 1: every committed batch seals).
    pub fn segment_at_wal_bytes(mut self, bytes: u64) -> Self {
        self.max_segment_bytes = Some(bytes);
        self
    }

    /// True when a collection with `live` live sets out of `slots` total
    /// slots should be compacted: at least one slot is dead and the dead
    /// ratio is at or past the threshold.
    pub fn should_compact(&self, live: usize, slots: usize) -> bool {
        let Some(ratio) = self.max_dead_ratio else {
            return false;
        };
        let dead = slots.saturating_sub(live);
        dead > 0 && dead as f64 >= ratio * slots as f64
    }

    /// True when a WAL currently holding `wal_records` records should be
    /// checkpointed into a fresh snapshot: the WAL is non-empty and at
    /// or past the threshold.
    pub fn should_snapshot(&self, wal_records: u64) -> bool {
        let Some(max) = self.max_wal_records else {
            return false;
        };
        wal_records > 0 && wal_records >= max
    }

    /// True when a WAL segment currently holding `segment_bytes` bytes
    /// of records should be sealed so new appends open a fresh segment.
    pub fn should_seal(&self, segment_bytes: u64) -> bool {
        let Some(max) = self.max_segment_bytes else {
            return false;
        };
        segment_bytes > 0 && segment_bytes >= max
    }

    /// True when no trigger is configured.
    pub fn is_disabled(&self) -> bool {
        self.max_dead_ratio.is_none()
            && self.max_wal_records.is_none()
            && self.max_segment_bytes.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_never_fires() {
        let p = CompactionPolicy::DISABLED;
        assert!(!p.should_compact(0, 10)); // even all-dead
        assert!(!p.should_snapshot(u64::MAX));
        assert!(p.is_disabled());
        assert_eq!(CompactionPolicy::default(), p);
    }

    #[test]
    fn ratio_zero_compacts_on_first_dead_slot_only() {
        let p = CompactionPolicy::default().compact_at_dead_ratio(0.0);
        assert!(!p.should_compact(10, 10), "no dead slots, nothing to do");
        assert!(p.should_compact(9, 10), "any dead slot trips ratio 0");
        assert!(!p.should_compact(0, 0), "empty collection never compacts");
    }

    #[test]
    fn exactly_at_threshold_triggers() {
        let p = CompactionPolicy::default().compact_at_dead_ratio(0.5);
        assert!(!p.should_compact(6, 10), "4/10 below");
        assert!(p.should_compact(5, 10), "5/10 exactly at the threshold");
        assert!(p.should_compact(4, 10), "6/10 above");
    }

    #[test]
    fn all_dead_triggers_any_enabled_ratio() {
        for ratio in [0.0, 0.5, 1.0] {
            let p = CompactionPolicy::default().compact_at_dead_ratio(ratio);
            assert!(p.should_compact(0, 7), "ratio {ratio}");
        }
        // …including a ratio of exactly 1.0, where only all-dead fires.
        let p = CompactionPolicy::default().compact_at_dead_ratio(1.0);
        assert!(!p.should_compact(1, 7));
    }

    #[test]
    fn ratio_is_clamped() {
        let p = CompactionPolicy::default().compact_at_dead_ratio(7.5);
        assert_eq!(p.max_dead_ratio, Some(1.0));
        let p = CompactionPolicy::default().compact_at_dead_ratio(-1.0);
        assert_eq!(p.max_dead_ratio, Some(0.0));
    }

    #[test]
    fn segment_threshold_edges() {
        let p = CompactionPolicy::default().segment_at_wal_bytes(64);
        assert!(!p.should_seal(0));
        assert!(!p.should_seal(63));
        assert!(p.should_seal(64), "exactly at the threshold");
        assert!(!p.is_disabled());
        // Threshold 0 behaves like 1: an empty segment never seals.
        let p = CompactionPolicy::default().segment_at_wal_bytes(0);
        assert!(!p.should_seal(0));
        assert!(p.should_seal(1));
        assert!(!CompactionPolicy::DISABLED.should_seal(u64::MAX));
    }

    #[test]
    fn snapshot_threshold_edges() {
        let p = CompactionPolicy::default().snapshot_at_wal_records(3);
        assert!(!p.should_snapshot(0));
        assert!(!p.should_snapshot(2));
        assert!(p.should_snapshot(3), "exactly at the threshold");
        assert!(p.should_snapshot(4));
        // Threshold 0 behaves like 1: an empty WAL never checkpoints.
        let p = CompactionPolicy::default().snapshot_at_wal_records(0);
        assert!(!p.should_snapshot(0));
        assert!(p.should_snapshot(1));
    }
}
