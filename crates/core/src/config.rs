//! Engine configuration: metrics, signature schemes, filters.

use silkmoth_collection::Tokenization;
use silkmoth_text::SimilarityFunction;

/// Which relatedness metric decides whether two sets are related (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelatednessMetric {
    /// `similar(R,S) = M / (|R| + |S| − M)` — Definition 1.
    Similarity,
    /// `contain(R,S) = M / |R|` — Definition 2 (R is the contained side).
    Containment,
}

/// Signature scheme used for candidate selection (§4, §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureScheme {
    /// The state-of-the-art baseline (§4.2): remove the `⌈θ⌉ − 1`
    /// most-frequent token occurrences, keep the rest.
    Unweighted,
    /// The weighted scheme with the cost/value greedy of §4.3. Ignores α.
    Weighted,
    /// Unweighted + sim-thresh cap — simulates FastJoin's scheme (§6.2,
    /// evaluated as COMBUNWEIGHTED in §8.2).
    CombinedUnweighted,
    /// Skyline scheme (§6.3): weighted greedy, then per-element trim to
    /// the sim-thresh cap.
    Skyline,
    /// Dichotomy scheme (§6.4): cost/value greedy where elements saturate
    /// at the sim-thresh cap and stop contributing to the validity sum.
    Dichotomy,
}

/// Which refinement filters run between candidate selection and
/// verification (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FilterKind {
    /// No refinement: NOFILTER in §8.3.
    None,
    /// Check filter only (Algorithm 1): CHECK in §8.3.
    Check,
    /// Check + nearest-neighbor filter (Algorithm 2): NEARESTNEIGHBOR in
    /// §8.3. (The NN filter subsumes the check filter — footnote 13 — so
    /// it is never offered alone.)
    CheckAndNearestNeighbor,
}

/// Full configuration of a SilkMoth run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Relatedness metric.
    pub metric: RelatednessMetric,
    /// Element similarity function φ.
    pub similarity: SimilarityFunction,
    /// Relatedness threshold δ ∈ (0, 1].
    pub delta: f64,
    /// Similarity threshold α ∈ [0, 1): element similarities below α count
    /// as 0 (§2.1, §6).
    pub alpha: f64,
    /// Signature scheme.
    pub scheme: SignatureScheme,
    /// Refinement filters.
    pub filter: FilterKind,
    /// Apply the triangle-inequality reduction before maximum matching
    /// (§5.3). Silently skipped when α > 0, where it is invalid (§6.5).
    pub reduction: bool,
}

impl EngineConfig {
    /// A sensible default: full SilkMoth (dichotomy + both filters +
    /// reduction) under SET-SIMILARITY with Jaccard.
    pub fn full(
        metric: RelatednessMetric,
        similarity: SimilarityFunction,
        delta: f64,
        alpha: f64,
    ) -> Self {
        Self {
            metric,
            similarity,
            delta,
            alpha,
            scheme: SignatureScheme::Dichotomy,
            filter: FilterKind::CheckAndNearestNeighbor,
            reduction: true,
        }
    }

    /// The unoptimized configuration used as NOOPT in Figure 4:
    /// unweighted signatures, no filters, no reduction.
    pub fn noopt(
        metric: RelatednessMetric,
        similarity: SimilarityFunction,
        delta: f64,
        alpha: f64,
    ) -> Self {
        Self {
            metric,
            similarity,
            delta,
            alpha,
            scheme: SignatureScheme::Unweighted,
            filter: FilterKind::None,
            reduction: false,
        }
    }

    /// True when the reduction optimization may actually run: it requires
    /// the dual distance to be a metric, which fails for `φ_α` with α > 0
    /// (§6.5) and for `NEds` (§2.1 notes only `Eds` has the triangle
    /// inequality among the edit similarities).
    pub fn reduction_applicable(&self) -> bool {
        // Only Jaccard distance and 1 − Eds are metrics; 1 − Dice,
        // 1 − cosine, and 1 − NEds all violate the triangle inequality.
        self.reduction
            && self.alpha == 0.0
            && matches!(
                self.similarity,
                SimilarityFunction::Jaccard | SimilarityFunction::Eds { .. }
            )
    }

    /// The tokenization a collection must have been built with for this
    /// configuration.
    pub fn tokenization(&self) -> Tokenization {
        match self.similarity {
            SimilarityFunction::Jaccard | SimilarityFunction::Dice | SimilarityFunction::Cosine => {
                Tokenization::Whitespace
            }
            SimilarityFunction::Eds { q } | SimilarityFunction::NEds { q } => {
                Tokenization::QGram { q }
            }
        }
    }

    /// Validates parameter ranges and cross-parameter constraints.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.delta > 0.0 && self.delta <= 1.0) {
            return Err(ConfigError::DeltaOutOfRange(self.delta));
        }
        if !(0.0..1.0).contains(&self.alpha) {
            return Err(ConfigError::AlphaOutOfRange(self.alpha));
        }
        if let Some(q) = self.similarity.q() {
            if q == 0 {
                return Err(ConfigError::ZeroQ);
            }
            // Footnote 11's correctness constraint for the unweighted/
            // FastJoin-style scheme, whose validity argument needs
            // "φ_α > 0 ⟹ shares a q-gram", i.e. α > q/(q+1).
            if matches!(
                self.scheme,
                SignatureScheme::Unweighted | SignatureScheme::CombinedUnweighted
            ) && self.alpha <= q as f64 / (q + 1) as f64
            {
                return Err(ConfigError::UnweightedEditNeedsAlpha {
                    q,
                    alpha: self.alpha,
                });
            }
        }
        Ok(())
    }
}

/// Configuration errors surfaced by [`EngineConfig::validate`] and engine
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// δ must lie in (0, 1]; δ = 0 makes every pair related (footnote 2).
    DeltaOutOfRange(f64),
    /// α must lie in [0, 1).
    AlphaOutOfRange(f64),
    /// q-gram length must be ≥ 1.
    ZeroQ,
    /// A per-query floor (see [`Query::floor`](crate::Query::floor)) must
    /// lie in [0, 1]; it is never silently clamped.
    FloorOutOfRange(f64),
    /// The unweighted scheme with edit similarity requires
    /// `α > q/(q+1)` for its validity argument (§7.2, footnote 11).
    UnweightedEditNeedsAlpha {
        /// Configured q.
        q: usize,
        /// Configured α.
        alpha: f64,
    },
    /// The collection was built with a different tokenization than the
    /// similarity function requires.
    TokenizationMismatch {
        /// What the collection has.
        have: Tokenization,
        /// What the configuration needs.
        need: Tokenization,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DeltaOutOfRange(d) => write!(f, "relatedness threshold δ={d} outside (0, 1]"),
            Self::AlphaOutOfRange(a) => write!(f, "similarity threshold α={a} outside [0, 1)"),
            Self::ZeroQ => write!(f, "q-gram length must be at least 1"),
            Self::FloorOutOfRange(v) => write!(f, "query floor {v} outside [0, 1]"),
            Self::UnweightedEditNeedsAlpha { q, alpha } => write!(
                f,
                "unweighted signature scheme with edit similarity requires α > q/(q+1) \
                 (q={q} needs α > {:.3}, got {alpha})",
                *q as f64 / (*q as f64 + 1.0)
            ),
            Self::TokenizationMismatch { have, need } => {
                write!(
                    f,
                    "collection tokenization {have:?} does not match config {need:?}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Absolute slack applied when filters compare upper-bound estimates to θ;
/// pruning only happens when the estimate is below `θ − FILTER_EPS`, so
/// float noise can only admit extra candidates, never drop true results.
pub const FILTER_EPS: f64 = 1e-5;

/// Relative slack on the final relatedness comparison against δ.
pub const VERIFY_EPS: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_ranges() {
        let mut c = EngineConfig::full(
            RelatednessMetric::Similarity,
            SimilarityFunction::Jaccard,
            0.7,
            0.0,
        );
        assert!(c.validate().is_ok());
        c.delta = 0.0;
        assert!(matches!(c.validate(), Err(ConfigError::DeltaOutOfRange(_))));
        c.delta = 0.7;
        c.alpha = 1.0;
        assert!(matches!(c.validate(), Err(ConfigError::AlphaOutOfRange(_))));
    }

    #[test]
    fn unweighted_edit_needs_alpha() {
        let mut c = EngineConfig::noopt(
            RelatednessMetric::Similarity,
            SimilarityFunction::Eds { q: 3 },
            0.7,
            0.0,
        );
        assert!(matches!(
            c.validate(),
            Err(ConfigError::UnweightedEditNeedsAlpha { .. })
        ));
        c.alpha = 0.8; // > 3/4
        assert!(c.validate().is_ok());
        // Weighted scheme has no such constraint.
        c.alpha = 0.0;
        c.scheme = SignatureScheme::Weighted;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn reduction_applicability() {
        let mut c = EngineConfig::full(
            RelatednessMetric::Containment,
            SimilarityFunction::Jaccard,
            0.7,
            0.0,
        );
        assert!(c.reduction_applicable());
        c.alpha = 0.5;
        assert!(!c.reduction_applicable());
        c.alpha = 0.0;
        c.similarity = SimilarityFunction::NEds { q: 2 };
        assert!(!c.reduction_applicable());
        c.similarity = SimilarityFunction::Eds { q: 2 };
        assert!(c.reduction_applicable());
        c.reduction = false;
        assert!(!c.reduction_applicable());
    }

    #[test]
    fn tokenization_mapping() {
        let c = EngineConfig::full(
            RelatednessMetric::Similarity,
            SimilarityFunction::Eds { q: 4 },
            0.8,
            0.8,
        );
        assert_eq!(c.tokenization(), Tokenization::QGram { q: 4 });
    }

    #[test]
    fn error_display() {
        let e = ConfigError::UnweightedEditNeedsAlpha { q: 3, alpha: 0.5 };
        assert!(e.to_string().contains("α > 0.750"));
    }
}
