//! Fluent construction of [`Engine`]s.

use std::sync::Arc;

use crate::config::{ConfigError, EngineConfig, FilterKind, RelatednessMetric, SignatureScheme};
use crate::engine::Engine;
use silkmoth_collection::Collection;
use silkmoth_text::SimilarityFunction;

/// Fluent builder for [`Engine`], started with [`Engine::builder`].
///
/// Starts from the full-SilkMoth defaults (SET-SIMILARITY, Jaccard,
/// δ = 0.7, α = 0, dichotomy signatures, both filters, reduction on) and
/// validates everything — parameter ranges, cross-parameter constraints,
/// and the collection's tokenization — once, in [`build`](Self::build).
///
/// ```
/// use silkmoth_core::{Engine, RelatednessMetric, SignatureScheme};
/// use silkmoth_collection::{Collection, Tokenization};
/// use silkmoth_text::SimilarityFunction;
///
/// let raw = vec![vec!["a b c", "d e"], vec!["a b c", "d e f"]];
/// let collection = Collection::build(&raw, Tokenization::Whitespace);
/// let engine = Engine::builder(collection)
///     .metric(RelatednessMetric::Similarity)
///     .phi(SimilarityFunction::Jaccard)
///     .delta(0.6)
///     .alpha(0.0)
///     .scheme(SignatureScheme::Dichotomy)
///     .build()
///     .unwrap();
/// assert_eq!(engine.discover_self().pairs.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    collection: Arc<Collection>,
    cfg: EngineConfig,
}

impl EngineBuilder {
    pub(crate) fn new(collection: Arc<Collection>) -> Self {
        Self {
            collection,
            cfg: EngineConfig::full(
                RelatednessMetric::Similarity,
                SimilarityFunction::Jaccard,
                0.7,
                0.0,
            ),
        }
    }

    /// Sets the relatedness metric (§2.1).
    pub fn metric(mut self, metric: RelatednessMetric) -> Self {
        self.cfg.metric = metric;
        self
    }

    /// Sets the element similarity function φ.
    pub fn phi(mut self, similarity: SimilarityFunction) -> Self {
        self.cfg.similarity = similarity;
        self
    }

    /// Sets the relatedness threshold δ ∈ (0, 1].
    pub fn delta(mut self, delta: f64) -> Self {
        self.cfg.delta = delta;
        self
    }

    /// Sets the similarity threshold α ∈ [0, 1) (§2.1, §6).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.cfg.alpha = alpha;
        self
    }

    /// Sets the signature scheme (§4, §6).
    pub fn scheme(mut self, scheme: SignatureScheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Sets the refinement filters (§5).
    pub fn filter(mut self, filter: FilterKind) -> Self {
        self.cfg.filter = filter;
        self
    }

    /// Enables or disables reduction-based verification (§5.3).
    pub fn reduction(mut self, on: bool) -> Self {
        self.cfg.reduction = on;
        self
    }

    /// Replaces the whole configuration at once (escape hatch for callers
    /// that already hold an [`EngineConfig`]).
    pub fn config(mut self, cfg: EngineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The configuration as currently accumulated (not yet validated).
    pub fn peek_config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Validates the configuration and builds the engine (including its
    /// inverted index).
    pub fn build(self) -> Result<Engine, ConfigError> {
        Engine::new(self.collection, self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silkmoth_collection::Tokenization;

    fn tiny() -> Collection {
        Collection::build(&[vec!["a b", "c d"]], Tokenization::Whitespace)
    }

    #[test]
    fn defaults_are_full_silkmoth() {
        let b = Engine::builder(tiny());
        let cfg = *b.peek_config();
        assert_eq!(cfg.metric, RelatednessMetric::Similarity);
        assert_eq!(cfg.scheme, SignatureScheme::Dichotomy);
        assert_eq!(cfg.filter, FilterKind::CheckAndNearestNeighbor);
        assert!(cfg.reduction);
        assert!(b.build().is_ok());
    }

    #[test]
    fn build_rejects_bad_delta() {
        for delta in [0.0, -0.5, 1.5, f64::NAN] {
            let err = Engine::builder(tiny()).delta(delta).build().unwrap_err();
            assert!(matches!(err, ConfigError::DeltaOutOfRange(_)), "δ={delta}");
        }
    }

    #[test]
    fn build_rejects_bad_alpha() {
        for alpha in [-0.1, 1.0, 2.0] {
            let err = Engine::builder(tiny()).alpha(alpha).build().unwrap_err();
            assert!(matches!(err, ConfigError::AlphaOutOfRange(_)), "α={alpha}");
        }
    }

    #[test]
    fn build_rejects_tokenization_mismatch() {
        // Whitespace collection + edit similarity (needs q-grams).
        let err = Engine::builder(tiny())
            .phi(SimilarityFunction::Eds { q: 2 })
            .alpha(0.7)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::TokenizationMismatch { .. }));
    }

    #[test]
    fn builder_accepts_shared_collection() {
        let shared = Arc::new(tiny());
        let engine = Engine::builder(shared.clone()).build().unwrap();
        assert!(Arc::ptr_eq(engine.collection_arc(), &shared));
    }

    #[test]
    fn config_escape_hatch_replaces_everything() {
        let cfg = EngineConfig::noopt(
            RelatednessMetric::Containment,
            SimilarityFunction::Jaccard,
            0.4,
            0.0,
        );
        let engine = Engine::builder(tiny())
            .delta(0.9)
            .config(cfg)
            .build()
            .unwrap();
        assert_eq!(*engine.config(), cfg);
    }
}
