//! Binary serialization of [`Update`]s — the payload format of
//! `silkmoth-storage`'s write-ahead log.
//!
//! One encoded update is self-delimiting and carries, for
//! [`Update::Compact`] on engines that renumber ids, the id remap the
//! live engine produced — recovery replays the compaction and *verifies*
//! it reproduced the recorded remap, turning any nondeterminism into a
//! named error instead of a silently divergent engine.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! tag      u8: 1 = Append, 2 = Remove, 3 = Compact
//! Append:  n_sets u32, per set: n_elems u32, per elem: len u32 + UTF-8
//! Remove:  n u32, then n set ids (u32)
//! Compact: has_remap u8; when 1: n u32, then n entries (u32;
//!          u32::MAX encodes a dropped slot)
//! ```
//!
//! Framing (length prefix, checksum) is the caller's job; decoding
//! rejects trailing bytes so a mis-framed record can never be silently
//! accepted.

use crate::engine::Update;
use silkmoth_collection::SetIdx;

/// Sentinel for a dropped slot in an encoded compaction remap.
const REMAP_NONE: u32 = u32::MAX;

/// Decoding errors. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the declared content.
    Truncated,
    /// Unknown update tag.
    BadTag(u8),
    /// An element's bytes are not valid UTF-8.
    BadUtf8,
    /// Bytes remained after one complete update.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "encoded update truncated"),
            Self::BadTag(t) => write!(f, "unknown update tag {t}"),
            Self::BadUtf8 => write!(f, "encoded update contains invalid UTF-8"),
            Self::TrailingBytes(n) => write!(f, "{n} trailing bytes after encoded update"),
        }
    }
}

impl std::error::Error for WireError {}

/// One decoded WAL payload: the update plus, for compactions, the remap
/// the original engine reported (see [`encode_update`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedUpdate {
    /// The update to replay.
    pub update: Update,
    /// For [`Update::Compact`]: the recorded `old id → new id` remap
    /// (`None` entries are dropped slots), when the engine produced one.
    pub remap: Option<Vec<Option<SetIdx>>>,
}

/// Appends the encoding of `update` to `out`. For [`Update::Compact`],
/// `remap` is the renumbering the engine will deterministically produce
/// (engines with stable ids pass `None`); it is ignored for the other
/// update kinds, whose ids are stable by construction.
pub fn encode_update(update: &Update, remap: Option<&[Option<SetIdx>]>, out: &mut Vec<u8>) {
    match update {
        Update::Append(sets) => {
            out.push(1);
            put_u32(out, sets.len() as u32);
            for set in sets {
                put_u32(out, set.len() as u32);
                for elem in set {
                    put_u32(out, elem.len() as u32);
                    out.extend_from_slice(elem.as_bytes());
                }
            }
        }
        Update::Remove(ids) => {
            out.push(2);
            put_u32(out, ids.len() as u32);
            for &id in ids {
                put_u32(out, id);
            }
        }
        Update::Compact => {
            out.push(3);
            match remap {
                None => out.push(0),
                Some(entries) => {
                    out.push(1);
                    put_u32(out, entries.len() as u32);
                    for entry in entries {
                        put_u32(out, entry.unwrap_or(REMAP_NONE));
                    }
                }
            }
        }
    }
}

/// Decodes exactly one update from `buf` (the full slice must be
/// consumed — trailing bytes are an error, see the module docs).
pub fn decode_update(buf: &[u8]) -> Result<DecodedUpdate, WireError> {
    let mut r = Reader { buf, pos: 0 };
    let decoded = match r.u8()? {
        1 => {
            let n_sets = r.u32()? as usize;
            // Capacity hints are clamped by what the buffer could hold
            // (every set needs ≥ 4 bytes), so a corrupt count cannot
            // force a huge allocation — it runs into `Truncated`.
            let mut sets = Vec::with_capacity(n_sets.min(r.remaining() / 4));
            for _ in 0..n_sets {
                let n_elems = r.u32()? as usize;
                let mut set = Vec::with_capacity(n_elems.min(r.remaining() / 4));
                for _ in 0..n_elems {
                    let len = r.u32()? as usize;
                    let bytes = r.bytes(len)?;
                    set.push(
                        std::str::from_utf8(bytes)
                            .map_err(|_| WireError::BadUtf8)?
                            .to_owned(),
                    );
                }
                sets.push(set);
            }
            DecodedUpdate {
                update: Update::Append(sets),
                remap: None,
            }
        }
        2 => {
            let n = r.u32()? as usize;
            let mut ids = Vec::with_capacity(n.min(r.remaining() / 4));
            for _ in 0..n {
                ids.push(r.u32()?);
            }
            DecodedUpdate {
                update: Update::Remove(ids),
                remap: None,
            }
        }
        3 => {
            let remap = match r.u8()? {
                0 => None,
                _ => {
                    let n = r.u32()? as usize;
                    let mut entries = Vec::with_capacity(n.min(r.remaining() / 4));
                    for _ in 0..n {
                        let v = r.u32()?;
                        entries.push((v != REMAP_NONE).then_some(v));
                    }
                    Some(entries)
                }
            };
            DecodedUpdate {
                update: Update::Compact,
                remap,
            }
        }
        t => return Err(WireError::BadTag(t)),
    };
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(decoded)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let bytes = self.bytes(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn bytes(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(update: &Update, remap: Option<&[Option<SetIdx>]>) -> DecodedUpdate {
        let mut buf = Vec::new();
        encode_update(update, remap, &mut buf);
        decode_update(&buf).expect("round-trip")
    }

    #[test]
    fn append_roundtrips() {
        let u = Update::Append(vec![
            vec!["héllo wörld".into(), "".into()],
            vec!["a b c".into()],
        ]);
        let d = roundtrip(&u, None);
        assert_eq!(d.update, u);
        assert_eq!(d.remap, None);
    }

    #[test]
    fn remove_roundtrips() {
        let u = Update::Remove(vec![0, 7, 7, u32::MAX - 1]);
        assert_eq!(roundtrip(&u, None).update, u);
    }

    #[test]
    fn compact_roundtrips_with_and_without_remap() {
        let d = roundtrip(&Update::Compact, None);
        assert_eq!(d.update, Update::Compact);
        assert_eq!(d.remap, None);

        let remap = vec![Some(0), None, Some(1), None];
        let d = roundtrip(&Update::Compact, Some(&remap));
        assert_eq!(d.update, Update::Compact);
        assert_eq!(d.remap, Some(remap));
    }

    #[test]
    fn remap_is_ignored_for_stable_id_updates() {
        let remap = vec![Some(0)];
        let u = Update::Remove(vec![1]);
        let mut with = Vec::new();
        encode_update(&u, Some(&remap), &mut with);
        let mut without = Vec::new();
        encode_update(&u, None, &mut without);
        assert_eq!(with, without);
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic() {
        let u = Update::Append(vec![vec!["some words".into()], vec!["more".into()]]);
        let mut buf = Vec::new();
        encode_update(&u, None, &mut buf);
        for cut in 0..buf.len() {
            assert!(decode_update(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_tag_and_trailing_bytes_rejected() {
        assert_eq!(decode_update(&[9]).unwrap_err(), WireError::BadTag(9));
        let mut buf = Vec::new();
        encode_update(&Update::Compact, None, &mut buf);
        buf.push(0);
        assert_eq!(
            decode_update(&buf).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut buf = Vec::new();
        encode_update(&Update::Append(vec![vec!["ab".into()]]), None, &mut buf);
        let len = buf.len();
        buf[len - 1] = 0xFF; // clobber the second element byte
        assert_eq!(decode_update(&buf).unwrap_err(), WireError::BadUtf8);
    }

    #[test]
    fn corrupt_counts_cannot_demand_huge_allocations() {
        // Tag Append + n_sets = u32::MAX, then nothing: must fail fast
        // with Truncated, not allocate 2³² entries first.
        let mut buf = vec![1u8];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_update(&buf).unwrap_err(), WireError::Truncated);
    }
}
