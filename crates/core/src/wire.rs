//! Binary serialization of [`Update`]s — the payload format of
//! `silkmoth-storage`'s write-ahead log — and of [`QuerySpec`]s, the
//! owned query description every execution layer shares.
//!
//! One encoded update is self-delimiting and carries, for
//! [`Update::Compact`] on engines that renumber ids, the id remap the
//! live engine produced — recovery replays the compaction and *verifies*
//! it reproduced the recorded remap, turning any nondeterminism into a
//! named error instead of a silently divergent engine.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! tag      u8: 1 = Append, 2 = Remove, 3 = Compact
//! Append:  n_sets u32, per set: n_elems u32, per elem: len u32 + UTF-8
//! Remove:  n u32, then n set ids (u32)
//! Compact: has_remap u8; when 1: n u32, then n entries (u32;
//!          u32::MAX encodes a dropped slot)
//! ```
//!
//! Framing (length prefix, checksum) is the caller's job; decoding
//! rejects trailing bytes so a mis-framed record can never be silently
//! accepted.
//!
//! ## QuerySpec encoding
//!
//! [`encode_query_spec`] / [`decode_query_spec`] carry a
//! [`QuerySpec`] and, per the storage-layer format rule, lead with a
//! version byte ([`QUERY_SPEC_WIRE_VERSION`], currently 1): any
//! byte-layout change bumps it, and readers reject unknown versions by
//! name instead of misparsing. Layout after the version byte:
//!
//! ```text
//! n_elems  u32, per element: len u32 + UTF-8 bytes
//! flags    u8: bit0 has_top_k, bit1 has_floor, bit2 has_deadline,
//!              bit3 want_stats, bit4 want_explain, bit5 want_timing
//!              (other bits must be 0)
//! top_k    u64            (present when bit0)
//! floor    f64 (LE bits)  (present when bit1; validated on decode
//!                          through the QuerySpec constructor — the one
//!                          floor check in the codebase)
//! deadline u64 µs         (present when bit2)
//! ```

use std::time::Duration;

use crate::config::ConfigError;
use crate::engine::Update;
use crate::spec::QuerySpec;
use silkmoth_collection::SetIdx;

/// Sentinel for a dropped slot in an encoded compaction remap.
const REMAP_NONE: u32 = u32::MAX;

/// Version byte leading every encoded [`QuerySpec`]; bump on any
/// byte-layout change (readers reject unknown versions by name).
pub const QUERY_SPEC_WIRE_VERSION: u8 = 1;

/// Decoding errors. Encoding is infallible.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The buffer ended before the declared content.
    Truncated,
    /// Unknown update tag.
    BadTag(u8),
    /// An element's bytes are not valid UTF-8.
    BadUtf8,
    /// Bytes remained after one complete update.
    TrailingBytes(usize),
    /// An encoded [`QuerySpec`] declares a format version this reader
    /// does not understand.
    BadVersion(u8),
    /// An encoded [`QuerySpec`] sets flag bits this reader does not
    /// define — corruption, or a payload from a future writer that
    /// failed to bump the version.
    BadFlags(u8),
    /// The decoded bytes parse but do not form a valid [`QuerySpec`]
    /// (e.g. an out-of-range floor, rejected by the spec's validated
    /// constructor).
    InvalidSpec(ConfigError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "encoded payload truncated"),
            Self::BadTag(t) => write!(f, "unknown update tag {t}"),
            Self::BadUtf8 => write!(f, "encoded payload contains invalid UTF-8"),
            Self::TrailingBytes(n) => write!(f, "{n} trailing bytes after encoded payload"),
            Self::BadVersion(v) => write!(
                f,
                "unsupported query spec wire version {v} (this reader speaks \
                 {QUERY_SPEC_WIRE_VERSION})"
            ),
            Self::BadFlags(b) => write!(f, "undefined query spec flag bits {b:#010b}"),
            Self::InvalidSpec(e) => write!(f, "decoded query spec is invalid: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One decoded WAL payload: the update plus, for compactions, the remap
/// the original engine reported (see [`encode_update`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedUpdate {
    /// The update to replay.
    pub update: Update,
    /// For [`Update::Compact`]: the recorded `old id → new id` remap
    /// (`None` entries are dropped slots), when the engine produced one.
    pub remap: Option<Vec<Option<SetIdx>>>,
}

/// Appends the encoding of `update` to `out`. For [`Update::Compact`],
/// `remap` is the renumbering the engine will deterministically produce
/// (engines with stable ids pass `None`); it is ignored for the other
/// update kinds, whose ids are stable by construction.
pub fn encode_update(update: &Update, remap: Option<&[Option<SetIdx>]>, out: &mut Vec<u8>) {
    match update {
        Update::Append(sets) => {
            out.push(1);
            put_u32(out, sets.len() as u32);
            for set in sets {
                put_u32(out, set.len() as u32);
                for elem in set {
                    put_u32(out, elem.len() as u32);
                    out.extend_from_slice(elem.as_bytes());
                }
            }
        }
        Update::Remove(ids) => {
            out.push(2);
            put_u32(out, ids.len() as u32);
            for &id in ids {
                put_u32(out, id);
            }
        }
        Update::Compact => {
            out.push(3);
            match remap {
                None => out.push(0),
                Some(entries) => {
                    out.push(1);
                    put_u32(out, entries.len() as u32);
                    for entry in entries {
                        put_u32(out, entry.unwrap_or(REMAP_NONE));
                    }
                }
            }
        }
    }
}

/// Decodes exactly one update from `buf` (the full slice must be
/// consumed — trailing bytes are an error, see the module docs).
pub fn decode_update(buf: &[u8]) -> Result<DecodedUpdate, WireError> {
    let mut r = Reader { buf, pos: 0 };
    let decoded = match r.u8()? {
        1 => {
            let n_sets = r.u32()? as usize;
            // Capacity hints are clamped by what the buffer could hold
            // (every set needs ≥ 4 bytes), so a corrupt count cannot
            // force a huge allocation — it runs into `Truncated`.
            let mut sets = Vec::with_capacity(n_sets.min(r.remaining() / 4));
            for _ in 0..n_sets {
                let n_elems = r.u32()? as usize;
                let mut set = Vec::with_capacity(n_elems.min(r.remaining() / 4));
                for _ in 0..n_elems {
                    let len = r.u32()? as usize;
                    let bytes = r.bytes(len)?;
                    set.push(
                        std::str::from_utf8(bytes)
                            .map_err(|_| WireError::BadUtf8)?
                            .to_owned(),
                    );
                }
                sets.push(set);
            }
            DecodedUpdate {
                update: Update::Append(sets),
                remap: None,
            }
        }
        2 => {
            let n = r.u32()? as usize;
            let mut ids = Vec::with_capacity(n.min(r.remaining() / 4));
            for _ in 0..n {
                ids.push(r.u32()?);
            }
            DecodedUpdate {
                update: Update::Remove(ids),
                remap: None,
            }
        }
        3 => {
            let remap = match r.u8()? {
                0 => None,
                _ => {
                    let n = r.u32()? as usize;
                    let mut entries = Vec::with_capacity(n.min(r.remaining() / 4));
                    for _ in 0..n {
                        let v = r.u32()?;
                        entries.push((v != REMAP_NONE).then_some(v));
                    }
                    Some(entries)
                }
            };
            DecodedUpdate {
                update: Update::Compact,
                remap,
            }
        }
        t => return Err(WireError::BadTag(t)),
    };
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(decoded)
}

/// Flag bits of the encoded [`QuerySpec`] (see the module docs).
mod spec_flags {
    pub const HAS_TOP_K: u8 = 1 << 0;
    pub const HAS_FLOOR: u8 = 1 << 1;
    pub const HAS_DEADLINE: u8 = 1 << 2;
    pub const WANT_STATS: u8 = 1 << 3;
    pub const WANT_EXPLAIN: u8 = 1 << 4;
    pub const WANT_TIMING: u8 = 1 << 5;
    pub const ALL: u8 =
        HAS_TOP_K | HAS_FLOOR | HAS_DEADLINE | WANT_STATS | WANT_EXPLAIN | WANT_TIMING;
}

/// Appends the versioned encoding of `spec` to `out`; see the module
/// docs for the layout. Deadlines are carried at microsecond
/// granularity (saturating), which is far below the cooperative
/// deadline-check resolution.
pub fn encode_query_spec(spec: &QuerySpec, out: &mut Vec<u8>) {
    out.push(QUERY_SPEC_WIRE_VERSION);
    put_u32(out, spec.reference().len() as u32);
    for elem in spec.reference() {
        put_u32(out, elem.len() as u32);
        out.extend_from_slice(elem.as_bytes());
    }
    let mut flags = 0u8;
    if spec.top_k().is_some() {
        flags |= spec_flags::HAS_TOP_K;
    }
    if spec.floor().is_some() {
        flags |= spec_flags::HAS_FLOOR;
    }
    if spec.deadline().is_some() {
        flags |= spec_flags::HAS_DEADLINE;
    }
    if spec.want_stats() {
        flags |= spec_flags::WANT_STATS;
    }
    if spec.want_explain() {
        flags |= spec_flags::WANT_EXPLAIN;
    }
    if spec.want_timing() {
        flags |= spec_flags::WANT_TIMING;
    }
    out.push(flags);
    if let Some(k) = spec.top_k() {
        out.extend_from_slice(&(k as u64).to_le_bytes());
    }
    if let Some(floor) = spec.floor() {
        out.extend_from_slice(&floor.to_bits().to_le_bytes());
    }
    if let Some(budget) = spec.deadline() {
        let micros = u64::try_from(budget.as_micros()).unwrap_or(u64::MAX);
        out.extend_from_slice(&micros.to_le_bytes());
    }
}

/// Decodes exactly one [`QuerySpec`] from `buf` (trailing bytes are an
/// error). The floor, when present, goes through
/// [`QuerySpec::with_floor`] — the single validation point — so a
/// corrupt or malicious payload cannot smuggle an out-of-range
/// threshold past the range check.
pub fn decode_query_spec(buf: &[u8]) -> Result<QuerySpec, WireError> {
    let mut r = Reader { buf, pos: 0 };
    let version = r.u8()?;
    if version != QUERY_SPEC_WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let n_elems = r.u32()? as usize;
    let mut reference = Vec::with_capacity(n_elems.min(r.remaining() / 4));
    for _ in 0..n_elems {
        let len = r.u32()? as usize;
        let bytes = r.bytes(len)?;
        reference.push(
            std::str::from_utf8(bytes)
                .map_err(|_| WireError::BadUtf8)?
                .to_owned(),
        );
    }
    let flags = r.u8()?;
    if flags & !spec_flags::ALL != 0 {
        return Err(WireError::BadFlags(flags));
    }
    let mut spec = QuerySpec::new(reference)
        .with_stats(flags & spec_flags::WANT_STATS != 0)
        .with_explain(flags & spec_flags::WANT_EXPLAIN != 0)
        .with_timing(flags & spec_flags::WANT_TIMING != 0);
    if flags & spec_flags::HAS_TOP_K != 0 {
        spec = spec.with_top_k(r.u64()? as usize);
    }
    if flags & spec_flags::HAS_FLOOR != 0 {
        let floor = f64::from_bits(r.u64()?);
        spec = spec.with_floor(floor).map_err(WireError::InvalidSpec)?;
    }
    if flags & spec_flags::HAS_DEADLINE != 0 {
        spec = spec.with_deadline(Duration::from_micros(r.u64()?));
    }
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(spec)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let bytes = self.bytes(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let bytes = self.bytes(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(update: &Update, remap: Option<&[Option<SetIdx>]>) -> DecodedUpdate {
        let mut buf = Vec::new();
        encode_update(update, remap, &mut buf);
        decode_update(&buf).expect("round-trip")
    }

    #[test]
    fn append_roundtrips() {
        let u = Update::Append(vec![
            vec!["héllo wörld".into(), "".into()],
            vec!["a b c".into()],
        ]);
        let d = roundtrip(&u, None);
        assert_eq!(d.update, u);
        assert_eq!(d.remap, None);
    }

    #[test]
    fn remove_roundtrips() {
        let u = Update::Remove(vec![0, 7, 7, u32::MAX - 1]);
        assert_eq!(roundtrip(&u, None).update, u);
    }

    #[test]
    fn compact_roundtrips_with_and_without_remap() {
        let d = roundtrip(&Update::Compact, None);
        assert_eq!(d.update, Update::Compact);
        assert_eq!(d.remap, None);

        let remap = vec![Some(0), None, Some(1), None];
        let d = roundtrip(&Update::Compact, Some(&remap));
        assert_eq!(d.update, Update::Compact);
        assert_eq!(d.remap, Some(remap));
    }

    #[test]
    fn remap_is_ignored_for_stable_id_updates() {
        let remap = vec![Some(0)];
        let u = Update::Remove(vec![1]);
        let mut with = Vec::new();
        encode_update(&u, Some(&remap), &mut with);
        let mut without = Vec::new();
        encode_update(&u, None, &mut without);
        assert_eq!(with, without);
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic() {
        let u = Update::Append(vec![vec!["some words".into()], vec!["more".into()]]);
        let mut buf = Vec::new();
        encode_update(&u, None, &mut buf);
        for cut in 0..buf.len() {
            assert!(decode_update(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_tag_and_trailing_bytes_rejected() {
        assert_eq!(decode_update(&[9]).unwrap_err(), WireError::BadTag(9));
        let mut buf = Vec::new();
        encode_update(&Update::Compact, None, &mut buf);
        buf.push(0);
        assert_eq!(
            decode_update(&buf).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut buf = Vec::new();
        encode_update(&Update::Append(vec![vec!["ab".into()]]), None, &mut buf);
        let len = buf.len();
        buf[len - 1] = 0xFF; // clobber the second element byte
        assert_eq!(decode_update(&buf).unwrap_err(), WireError::BadUtf8);
    }

    #[test]
    fn corrupt_counts_cannot_demand_huge_allocations() {
        // Tag Append + n_sets = u32::MAX, then nothing: must fail fast
        // with Truncated, not allocate 2³² entries first.
        let mut buf = vec![1u8];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_update(&buf).unwrap_err(), WireError::Truncated);
    }

    fn spec_roundtrip(spec: &QuerySpec) {
        let mut buf = Vec::new();
        encode_query_spec(spec, &mut buf);
        assert_eq!(&decode_query_spec(&buf).expect("round-trip"), spec);
    }

    #[test]
    fn query_spec_roundtrips_across_field_combinations() {
        let base = QuerySpec::new(vec!["héllo wörld".into(), String::new(), "a b c".into()]);
        spec_roundtrip(&base);
        spec_roundtrip(&base.clone().with_top_k(0));
        spec_roundtrip(&base.clone().with_top_k(usize::MAX));
        spec_roundtrip(&base.clone().with_floor(0.0).unwrap());
        spec_roundtrip(&base.clone().with_floor(1.0).unwrap());
        spec_roundtrip(&base.clone().with_deadline(Duration::ZERO));
        spec_roundtrip(&base.clone().with_deadline(Duration::from_micros(123_456)));
        spec_roundtrip(&base.clone().with_stats(false).with_explain(true));
        spec_roundtrip(&base.clone().with_timing(true));
        spec_roundtrip(
            &base
                .with_top_k(7)
                .with_floor(0.125)
                .unwrap()
                .with_deadline(Duration::from_millis(50))
                .with_stats(false)
                .with_explain(true)
                .with_timing(true),
        );
        spec_roundtrip(&QuerySpec::new(Vec::new()));
    }

    #[test]
    fn query_spec_every_truncation_is_an_error_never_a_panic() {
        let spec = QuerySpec::new(vec!["some words".into(), "more".into()])
            .with_top_k(3)
            .with_floor(0.5)
            .unwrap()
            .with_deadline(Duration::from_millis(10));
        let mut buf = Vec::new();
        encode_query_spec(&spec, &mut buf);
        for cut in 0..buf.len() {
            assert!(decode_query_spec(&buf[..cut]).is_err(), "cut at {cut}");
        }
        buf.push(0);
        assert_eq!(
            decode_query_spec(&buf).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn query_spec_unknown_version_and_flags_rejected_by_name() {
        let mut buf = Vec::new();
        encode_query_spec(&QuerySpec::new(vec!["a".into()]), &mut buf);
        let good = buf.clone();
        buf[0] = 9;
        assert_eq!(
            decode_query_spec(&buf).unwrap_err(),
            WireError::BadVersion(9)
        );
        // The flags byte is the last one for a bare spec; set an
        // undefined bit.
        let mut buf = good;
        *buf.last_mut().unwrap() |= 1 << 7;
        assert!(matches!(
            decode_query_spec(&buf).unwrap_err(),
            WireError::BadFlags(_)
        ));
    }

    #[test]
    fn query_spec_decode_validates_the_floor() {
        // Hand-craft a payload whose floor bits are out of range: the
        // decoder must route it through the validated constructor.
        for bad in [1.5f64, -0.1, f64::NAN, f64::INFINITY] {
            let mut buf = vec![QUERY_SPEC_WIRE_VERSION];
            put_u32(&mut buf, 0); // no reference elements
            buf.push(super::spec_flags::HAS_FLOOR | super::spec_flags::WANT_STATS);
            buf.extend_from_slice(&bad.to_bits().to_le_bytes());
            assert!(
                matches!(
                    decode_query_spec(&buf).unwrap_err(),
                    WireError::InvalidSpec(ConfigError::FloorOutOfRange(_))
                ),
                "{bad}"
            );
        }
    }
}
