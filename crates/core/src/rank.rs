//! Deterministic result ranking and merging, shared by
//! [`Query::top_k`](crate::Query::top_k) and scatter-gather layers
//! (e.g. a sharded engine) that must reproduce single-engine output
//! exactly.

use silkmoth_collection::SetIdx;

/// Ranks `(set id, score)` results in the documented top-k order —
/// **score descending, ties broken by ascending set id** — and truncates
/// to the `k` best.
///
/// Scores produced by verification are never NaN, so the ordering is
/// total and the result deterministic.
pub fn rank_top_k(results: &mut Vec<(SetIdx, f64)>, k: usize) {
    results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    results.truncate(k);
}

/// Merges per-partition result lists into one list with single-engine
/// ordering: with `k`, the global top-k under [`rank_top_k`]'s order;
/// without, all results in ascending set-id order (the plain
/// [`Query::run`](crate::Query::run) order).
///
/// Ids must already be in one global id space and each id must appear in
/// at most one partition. Because ranking is a total order over the
/// *union* of the inputs, the merge is provably identical to running an
/// unpartitioned engine: any per-partition truncation to `k` is lossless
/// for the global top-k (an item outside its own partition's top-k is
/// outranked by `k` items globally too).
pub fn merge_partitioned(parts: Vec<Vec<(SetIdx, f64)>>, k: Option<usize>) -> Vec<(SetIdx, f64)> {
    let mut all: Vec<(SetIdx, f64)> = parts.into_iter().flatten().collect();
    match k {
        Some(k) => rank_top_k(&mut all, k),
        None => all.sort_unstable_by_key(|&(sid, _)| sid),
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_orders_score_desc_then_id_asc() {
        let mut v = vec![(3, 0.5), (1, 0.9), (2, 0.5), (0, 0.1)];
        rank_top_k(&mut v, 3);
        assert_eq!(v, vec![(1, 0.9), (2, 0.5), (3, 0.5)]);
    }

    #[test]
    fn rank_truncates_and_handles_small_k() {
        let mut v = vec![(0, 0.2), (1, 0.8)];
        rank_top_k(&mut v, 0);
        assert!(v.is_empty());
        let mut v = vec![(0, 0.2)];
        rank_top_k(&mut v, 10);
        assert_eq!(v, vec![(0, 0.2)]);
    }

    #[test]
    fn merge_without_k_is_id_sorted() {
        let parts = vec![vec![(4, 0.3), (9, 0.7)], vec![(1, 0.5)], vec![]];
        assert_eq!(
            merge_partitioned(parts, None),
            vec![(1, 0.5), (4, 0.3), (9, 0.7)]
        );
    }

    #[test]
    fn merge_with_k_matches_global_ranking() {
        // Per-partition truncation to k composed with the global merge
        // equals ranking the full union.
        let full = vec![(0, 0.9), (1, 0.4), (2, 0.9), (3, 0.6), (4, 0.4)];
        let mut want = full.clone();
        rank_top_k(&mut want, 2);
        let mut p0 = vec![full[0], full[3]]; // partition {0, 3}
        let mut p1 = vec![full[1], full[2], full[4]]; // partition {1, 2, 4}
        rank_top_k(&mut p0, 2);
        rank_top_k(&mut p1, 2);
        assert_eq!(merge_partitioned(vec![p0, p1], Some(2)), want);
    }
}
