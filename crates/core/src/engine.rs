//! The unified engine: RELATED SET SEARCH and RELATED SET DISCOVERY
//! (Problems 1–2, Algorithm 3).

use std::sync::Arc;
use std::time::Instant;

use crate::builder::EngineBuilder;
use crate::config::{ConfigError, EngineConfig, RelatednessMetric};
use crate::explain::explain_pair;
use crate::filter::{PassStats, Restriction, Searcher};
use crate::query::{Query, QueryIter};
use crate::rank::rank_top_k;
use crate::spec::{PhaseTiming, QueryOutput, QuerySpec};
use silkmoth_collection::{Collection, InvertedIndex, SetIdx, SetRecord, UpdateError};

/// One related pair found by discovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelatedPair {
    /// Reference-side index (into the reference list or the collection).
    pub r: u32,
    /// Collection-side set index.
    pub s: SetIdx,
    /// Relatedness score (≥ δ).
    pub score: f64,
}

/// Output of a search pass: related sets plus instrumentation.
#[derive(Debug, Clone)]
pub struct SearchOutput {
    /// Related sets with relatedness scores (ascending id, unless ranked
    /// by [`Query::top_k`](crate::Query::top_k)).
    pub results: Vec<(SetIdx, f64)>,
    /// Pass counters.
    pub stats: PassStats,
}

/// Output of a discovery run.
#[derive(Debug, Clone)]
pub struct DiscoveryOutput {
    /// All related pairs, sorted by `(r, s)`.
    pub pairs: Vec<RelatedPair>,
    /// Aggregated counters over all passes.
    pub stats: PassStats,
}

/// One mutation of an engine's collection, applied by
/// [`Engine::apply`] (or routed to the owning shard by
/// `ShardedEngine::apply` in `silkmoth-server`).
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// Append new sets (raw element strings), assigning them the next
    /// free ids.
    Append(Vec<Vec<String>>),
    /// Tombstone the given set ids. Idempotent per id; an id that was
    /// never assigned fails with [`UpdateError::NoSuchSet`] without
    /// mutating anything.
    Remove(Vec<SetIdx>),
    /// Drop tombstoned slots, renumber the survivors densely, and
    /// rebuild dictionary + index from scratch.
    Compact,
}

/// What an [`Engine::apply`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Ids assigned to appended sets, in input order (empty otherwise).
    pub appended: Vec<SetIdx>,
    /// How many sets were newly tombstoned (0 otherwise).
    pub removed: usize,
    /// For [`Update::Compact`]: the slot remapping `old id → new id`
    /// (`None` entries are dropped tombstones). `None` for the other
    /// updates — their ids are stable.
    pub remap: Option<Vec<Option<SetIdx>>>,
}

/// The SilkMoth engine: an indexed collection plus a configuration.
///
/// The engine *owns* its collection behind an [`Arc`], so it has no
/// lifetime parameter: it can be stored in service state, moved across
/// threads, and shared behind another `Arc` (it is `Send + Sync`).
/// Construction accepts either a `Collection` (which is moved in) or an
/// existing `Arc<Collection>` (shared, no copy), and builds the inverted
/// index once (§3); every subsequent search pass reuses it.
///
/// Prefer [`Engine::builder`] for fluent construction and
/// [`Engine::query`] for parameterized searches:
///
/// ```
/// use silkmoth_core::{Engine, RelatednessMetric};
/// use silkmoth_collection::{Collection, Tokenization};
/// use silkmoth_text::SimilarityFunction;
///
/// let raw = vec![
///     vec!["77 Massachusetts Avenue Boston MA", "Fifth Street Seattle MA 02115"],
///     vec!["1 Main St Springfield IL", "2 Oak Ave Portland OR"],
/// ];
/// let collection = Collection::build(&raw, Tokenization::Whitespace);
/// let engine = Engine::builder(collection)
///     .metric(RelatednessMetric::Containment)
///     .phi(SimilarityFunction::Jaccard)
///     .delta(0.5)
///     .build()
///     .unwrap();
/// let r = engine.collection().encode_set(&["77 Massachusetts Avenue Boston MA"]);
/// let out = engine.query(&r).run().unwrap();
/// assert_eq!(out.results[0].0, 0);
/// ```
#[derive(Debug)]
pub struct Engine {
    collection: Arc<Collection>,
    index: InvertedIndex,
    cfg: EngineConfig,
}

impl Engine {
    /// Builds the inverted index and validates the configuration against
    /// the collection's tokenization.
    pub fn new(
        collection: impl Into<Arc<Collection>>,
        cfg: EngineConfig,
    ) -> Result<Self, ConfigError> {
        let collection = collection.into();
        cfg.validate()?;
        let need = cfg.tokenization();
        if collection.tokenization() != need {
            return Err(ConfigError::TokenizationMismatch {
                have: collection.tokenization(),
                need,
            });
        }
        Ok(Self {
            index: InvertedIndex::build(&collection),
            collection,
            cfg,
        })
    }

    /// Starts a fluent [`EngineBuilder`] over `collection` with the
    /// default configuration (full SilkMoth, SET-SIMILARITY, Jaccard,
    /// δ = 0.7, α = 0).
    pub fn builder(collection: impl Into<Arc<Collection>>) -> EngineBuilder {
        EngineBuilder::new(collection.into())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The underlying inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The indexed collection.
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// The shared handle to the indexed collection (cheap to clone).
    pub fn collection_arc(&self) -> &Arc<Collection> {
        &self.collection
    }

    /// Applies one mutation to the engine's collection, keeping the
    /// inverted index (the prefilter state every search pass reads)
    /// consistent without a full rebuild where possible:
    ///
    /// * [`Update::Append`] encodes the new sets against the existing
    ///   dictionary (growing it in place) and extends the index's
    ///   posting lists — appended ids are past every indexed set, so
    ///   each list's sort order is preserved;
    /// * [`Update::Remove`] tombstones in O(ids): postings stay, and
    ///   candidate admission filters by liveness instead;
    /// * [`Update::Compact`] rewrites collection, dictionary, and index
    ///   from the live sets (identical to a from-scratch build).
    ///
    /// The collection lives behind an [`Arc`]; if other handles to it
    /// exist (from [`collection_arc`](Self::collection_arc)), the update
    /// operates copy-on-write on this engine's own clone and the other
    /// handles keep the pre-update snapshot.
    ///
    /// After any sequence of updates, search/discover output is
    /// **byte-identical** (ids modulo the documented renumbering,
    /// scores bit-for-bit, tie order) to an engine freshly built from
    /// the equivalent live sets — enforced by
    /// `tests/update_equivalence.rs`.
    pub fn apply(&mut self, update: Update) -> Result<UpdateOutcome, UpdateError> {
        match update {
            Update::Append(sets) => {
                let collection = Arc::make_mut(&mut self.collection);
                let from = collection.len() as SetIdx;
                let appended = collection.append_sets(&sets).collect();
                self.index.append_sets(collection, from);
                Ok(UpdateOutcome {
                    appended,
                    removed: 0,
                    remap: None,
                })
            }
            Update::Remove(ids) => {
                let removed = Arc::make_mut(&mut self.collection).remove_sets(&ids)?;
                Ok(UpdateOutcome {
                    appended: Vec::new(),
                    removed,
                    remap: None,
                })
            }
            Update::Compact => {
                let collection = Arc::make_mut(&mut self.collection);
                let remap = collection.compact();
                self.index = InvertedIndex::build(collection);
                Ok(UpdateOutcome {
                    appended: Vec::new(),
                    removed: 0,
                    remap: Some(remap),
                })
            }
        }
    }

    /// Starts a [`Query`] for reference `r`: a parameterized search that
    /// can be ranked ([`top_k`](Query::top_k)), re-floored
    /// ([`floor`](Query::floor)), run in one shot ([`run`](Query::run)),
    /// or streamed ([`iter`](Query::iter)).
    ///
    /// Encode external references with [`Collection::encode_set`].
    pub fn query<'e, 'r>(&'e self, r: &'r SetRecord) -> Query<'e, 'r> {
        Query::new(self, r)
    }

    /// Executes one [`QuerySpec`] — the owned, serializable query
    /// description every layer of the stack shares. The reference is
    /// encoded against this engine's dictionary, the pass runs through
    /// the same chunked filter/verify loop as [`Query::iter`], and the
    /// output is **byte-identical** (ids, tie order, bit-equal scores)
    /// to the equivalent fluent-builder query.
    ///
    /// Infallible: a [`QuerySpec`] is validated at construction, so
    /// there is nothing left to reject here.
    pub fn execute(&self, spec: &QuerySpec) -> QueryOutput {
        self.execute_until(spec, None)
    }

    /// [`execute`](Self::execute) with an additional absolute deadline
    /// `cap` (e.g. a server's whole-request budget): execution stops at
    /// the earlier of the spec's own budget and `cap`, returning a
    /// truncated output flagged [`QueryOutput::timed_out`].
    pub fn execute_until(&self, spec: &QuerySpec, cap: Option<Instant>) -> QueryOutput {
        let r = self.collection.encode_set(spec.reference());
        self.execute_encoded(spec, &r, cap)
    }

    /// The shared execution core: runs a validated spec over an
    /// already-encoded reference. [`Query::run`] lowers to this with its
    /// borrowed record, [`execute`](Self::execute) after encoding the
    /// spec's raw strings — one code path, so the two can never drift.
    pub(crate) fn execute_encoded(
        &self,
        spec: &QuerySpec,
        r: &SetRecord,
        cap: Option<Instant>,
    ) -> QueryOutput {
        // The budget clock starts here and covers the whole execution,
        // explanations included.
        let deadline = spec.deadline_at(cap);
        let expired = || deadline.is_some_and(|d| Instant::now() >= d);
        // Phase timing brackets the phases with clock reads and nothing
        // else — the result path (hits, stats, explanations) is the same
        // code with or without anyone consuming `timing`.
        let t0 = Instant::now();
        let mut iter = QueryIter::stage(self, r, spec, deadline);
        let staged_at = Instant::now();
        let mut hits: Vec<(SetIdx, f64)> = iter.by_ref().collect();
        match spec.top_k() {
            Some(k) => rank_top_k(&mut hits, k),
            None => hits.sort_unstable_by_key(|&(sid, _)| sid),
        }
        let verified_at = Instant::now();
        let stats = iter.stats();
        let mut timed_out = iter.timed_out();
        let mut explanations = Vec::new();
        if spec.want_explain() {
            let cfg = spec.effective_cfg(self.config());
            explanations.reserve(hits.len());
            for &(sid, _) in &hits {
                // Explaining re-derives the filter pipeline plus an
                // O(n³) matching per hit, so it honors the same budget:
                // on expiry the (hit-aligned) prefix computed so far is
                // returned and the output is flagged.
                if expired() {
                    timed_out = true;
                    break;
                }
                explanations.push((
                    sid,
                    explain_pair(r, self.collection.set(sid), &cfg, &self.index),
                ));
            }
        }
        let timing = PhaseTiming {
            stage: staged_at - t0,
            verify: verified_at - staged_at,
            explain: verified_at.elapsed(),
        };
        QueryOutput {
            hits,
            stats,
            timed_out,
            explanations,
            timing,
        }
    }

    /// Executes a batch of specs across `threads` workers (0 = available
    /// parallelism) via the same scoped-thread fan-out as
    /// [`discover_parallel`](Self::discover_parallel), returning one
    /// [`QueryOutput`] per spec in input order. Each spec's deadline
    /// budget starts when *its* execution starts on a worker.
    pub fn execute_batch(&self, specs: &[QuerySpec], threads: usize) -> Vec<QueryOutput> {
        self.execute_batch_until(specs, threads, None)
    }

    /// [`execute_batch`](Self::execute_batch) with a shared absolute
    /// deadline `cap` bounding the whole batch (each query additionally
    /// honors its own budget).
    pub fn execute_batch_until(
        &self,
        specs: &[QuerySpec],
        threads: usize,
        cap: Option<Instant>,
    ) -> Vec<QueryOutput> {
        // A whole query is worth a thread: parallelize down to one spec
        // per worker (as the pre-QuerySpec CLI search path did), unlike
        // discovery's cheap per-pass unit.
        let workers = resolve_threads(threads).min(specs.len());
        fan_out_ranges(specs.len(), workers, |range| {
            range
                .map(|i| self.execute_until(&specs[i], cap))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// RELATED SET SEARCH (Problem 2): all sets related to reference `r`
    /// at the engine's δ. Equivalent to `self.query(r).run()` (which
    /// cannot fail without query-level overrides).
    pub fn search(&self, r: &SetRecord) -> SearchOutput {
        let mut searcher = Searcher::new(&self.collection, &self.index, self.cfg);
        let (results, stats) = searcher.run(r, Restriction::default());
        SearchOutput { results, stats }
    }

    /// RELATED SET DISCOVERY (Problem 1) for references encoded against
    /// this collection's dictionary: one search pass per reference.
    pub fn discover(&self, refs: &[SetRecord]) -> DiscoveryOutput {
        self.discover_parallel(refs, 1)
    }

    /// Parallel [`discover`](Self::discover) across `threads` workers
    /// (0 = available parallelism), each with its own reusable
    /// [`Searcher`]. Output — pairs, scores, and merged [`PassStats`] —
    /// is identical to the serial version.
    pub fn discover_parallel(&self, refs: &[SetRecord], threads: usize) -> DiscoveryOutput {
        self.fan_out(refs.len(), threads, |searcher, rid| {
            searcher.run(&refs[rid as usize], Restriction::default())
        })
    }

    /// Self-join discovery (`R = S`, the §8.1 string/schema matching
    /// setup).
    ///
    /// For the symmetric SET-SIMILARITY metric, each unordered pair is
    /// reported once with `r < s` (any related pair is guaranteed to be
    /// found from both sides, so each pass can restrict candidates to
    /// larger ids). For SET-CONTAINMENT the metric is asymmetric and all
    /// ordered pairs `r ≠ s` are reported.
    pub fn discover_self(&self) -> DiscoveryOutput {
        self.discover_self_parallel(1)
    }

    /// Parallel [`discover_self`](Self::discover_self) across `threads`
    /// workers (0 = available parallelism). Output is identical to the
    /// serial version.
    pub fn discover_self_parallel(&self, threads: usize) -> DiscoveryOutput {
        self.fan_out(self.collection.len(), threads, |searcher, rid| {
            self.self_pass(searcher, rid)
        })
    }

    /// Shared fan-out for both discovery flavors: runs `pass` for every
    /// reference id in `0..total`, serially or chunked across scoped
    /// worker threads that each reuse one [`Searcher`]. Pairs come back
    /// sorted by `(r, s)` and stats merged, so the thread count never
    /// changes the output.
    fn fan_out<F>(&self, total: usize, threads: usize, pass: F) -> DiscoveryOutput
    where
        F: Fn(&mut Searcher<'_>, SetIdx) -> (Vec<(SetIdx, f64)>, PassStats) + Sync,
    {
        // One search pass is cheap; only spawn when every worker gets at
        // least two of them.
        let threads = resolve_threads(threads);
        let workers = if total < 2 * threads { 1 } else { threads };
        let outputs = fan_out_ranges(total, workers, |range| {
            let mut searcher = Searcher::new(&self.collection, &self.index, self.cfg);
            let mut pairs = Vec::new();
            let mut stats = PassStats::default();
            for rid in range {
                let (results, ps) = pass(&mut searcher, rid as SetIdx);
                stats.merge(&ps);
                pairs.extend(results.into_iter().map(|(s, score)| RelatedPair {
                    r: rid as SetIdx,
                    s,
                    score,
                }));
            }
            (pairs, stats)
        });
        let mut pairs = Vec::new();
        let mut stats = PassStats::default();
        for (p, s) in outputs {
            pairs.extend(p);
            stats.merge(&s);
        }
        pairs.sort_unstable_by(|a, b| a.r.cmp(&b.r).then(a.s.cmp(&b.s)));
        DiscoveryOutput { pairs, stats }
    }

    pub(crate) fn self_pass(
        &self,
        searcher: &mut Searcher<'_>,
        rid: SetIdx,
    ) -> (Vec<(SetIdx, f64)>, PassStats) {
        // Tombstoned sets participate on neither side of a self-join.
        if !self.collection.is_live(rid) {
            return (Vec::new(), PassStats::default());
        }
        let restriction = match self.cfg.metric {
            RelatednessMetric::Similarity => Restriction {
                min_exclusive: Some(rid),
                skip: None,
            },
            RelatednessMetric::Containment => Restriction {
                min_exclusive: None,
                skip: Some(rid),
            },
        };
        searcher.run(self.collection.set(rid), restriction)
    }
}

/// Resolves a `--threads`-style count: 0 means all available cores.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// The scoped-thread fan-out shared by parallel discovery and
/// [`Engine::execute_batch`]: splits `0..total` into per-worker ranges
/// and runs `run_range` once per range — serially (one range) when
/// `workers <= 1` — returning the per-range outputs in range order, so
/// the worker count never changes the result. Callers pick `workers`
/// for their unit of work: discovery batches at least two passes per
/// worker (a pass is cheap), while query batches spawn down to one
/// spec per worker (a whole query is worth a thread).
pub(crate) fn fan_out_ranges<T, F>(total: usize, workers: usize, run_range: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    let workers = workers.min(total);
    if workers <= 1 {
        return vec![run_range(0..total)];
    }
    let chunk = total.div_ceil(workers);
    let mut outputs = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let run_range = &run_range;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(total);
                scope.spawn(move || run_range(lo..hi))
            })
            .collect();
        for h in handles {
            outputs.push(h.join().expect("fan-out worker panicked"));
        }
    });
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FilterKind, SignatureScheme};
    use silkmoth_collection::paper_example::table2;
    use silkmoth_collection::Tokenization;
    use silkmoth_text::SimilarityFunction;

    fn jaccard_cfg(metric: RelatednessMetric, delta: f64) -> EngineConfig {
        EngineConfig::full(metric, SimilarityFunction::Jaccard, delta, 0.0)
    }

    #[test]
    fn engine_is_send_sync_and_static() {
        fn assert_send_sync_static<T: Send + Sync + 'static>() {}
        assert_send_sync_static::<Engine>();
    }

    #[test]
    fn engine_shares_collection_via_arc() {
        let (c, r) = table2();
        let shared = Arc::new(c);
        let engine = Engine::new(
            shared.clone(),
            jaccard_cfg(RelatednessMetric::Containment, 0.7),
        )
        .unwrap();
        // No copy was made: the engine's collection is the same allocation.
        assert!(Arc::ptr_eq(engine.collection_arc(), &shared));
        // And the engine can be used from another thread after the local
        // handle is gone.
        drop(shared);
        let out = std::thread::spawn(move || engine.search(&r))
            .join()
            .unwrap();
        assert_eq!(out.results[0].0, 3);
    }

    #[test]
    fn search_example2() {
        let (c, r) = table2();
        let engine = Engine::new(c, jaccard_cfg(RelatednessMetric::Containment, 0.7)).unwrap();
        let out = engine.search(&r);
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].0, 3);
    }

    #[test]
    fn tokenization_mismatch_rejected() {
        let (c, _) = table2();
        let cfg = EngineConfig::full(
            RelatednessMetric::Similarity,
            SimilarityFunction::Eds { q: 2 },
            0.7,
            0.0,
        );
        assert!(matches!(
            Engine::new(c, cfg),
            Err(ConfigError::TokenizationMismatch { .. })
        ));
    }

    #[test]
    fn discover_self_similarity_reports_unordered_pairs() {
        let raw = vec![
            vec!["a b c", "d e f"],
            vec!["a b c", "d e f"],
            vec!["x y z", "p q r"],
        ];
        let c = silkmoth_collection::Collection::build(&raw, Tokenization::Whitespace);
        let engine = Engine::new(c, jaccard_cfg(RelatednessMetric::Similarity, 0.9)).unwrap();
        let out = engine.discover_self();
        assert_eq!(out.pairs.len(), 1);
        assert_eq!((out.pairs[0].r, out.pairs[0].s), (0, 1));
        assert!((out.pairs[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn discover_self_containment_reports_ordered_pairs() {
        // Set 0 ⊂ set 1: contain(0→1) holds, contain(1→0) does not (δ high).
        let raw = vec![vec!["a b", "c d"], vec!["a b", "c d", "e f", "g h"]];
        let c = silkmoth_collection::Collection::build(&raw, Tokenization::Whitespace);
        let engine = Engine::new(c, jaccard_cfg(RelatednessMetric::Containment, 0.9)).unwrap();
        let out = engine.discover_self();
        assert_eq!(out.pairs.len(), 1);
        assert_eq!((out.pairs[0].r, out.pairs[0].s), (0, 1));
    }

    #[test]
    fn parallel_matches_serial() {
        let raw: Vec<Vec<String>> = (0..40)
            .map(|i| {
                (0..3)
                    .map(|j| format!("w{} w{} shared{}", (i * 3 + j) % 7, (i + j) % 5, i % 4))
                    .collect()
            })
            .collect();
        let c = silkmoth_collection::Collection::build(&raw, Tokenization::Whitespace);
        let c = Arc::new(c);
        for metric in [
            RelatednessMetric::Similarity,
            RelatednessMetric::Containment,
        ] {
            let engine = Engine::new(c.clone(), jaccard_cfg(metric, 0.6)).unwrap();
            let serial = engine.discover_self();
            let parallel = engine.discover_self_parallel(4);
            assert_eq!(serial.pairs.len(), parallel.pairs.len());
            for (a, b) in serial.pairs.iter().zip(&parallel.pairs) {
                assert_eq!((a.r, a.s), (b.r, b.s));
                assert!((a.score - b.score).abs() < 1e-12);
            }
            assert_eq!(serial.stats, parallel.stats);
        }
    }

    #[test]
    fn discover_external_references() {
        let (c, r) = table2();
        let engine = Engine::new(c, jaccard_cfg(RelatednessMetric::Containment, 0.7)).unwrap();
        let refs = vec![r.clone(), engine.collection().encode_set(&["zz qq"])];
        let out = engine.discover(&refs);
        assert_eq!(out.pairs.len(), 1);
        assert_eq!(out.pairs[0].r, 0);
        assert_eq!(out.pairs[0].s, 3);
    }

    #[test]
    fn discover_parallel_matches_serial_on_external_refs() {
        let raw: Vec<Vec<String>> = (0..30)
            .map(|i| {
                (0..3)
                    .map(|j| format!("w{} w{} shared{}", (i * 3 + j) % 7, (i + j) % 5, i % 4))
                    .collect()
            })
            .collect();
        let c = silkmoth_collection::Collection::build(&raw, Tokenization::Whitespace);
        let engine = Engine::new(c, jaccard_cfg(RelatednessMetric::Similarity, 0.5)).unwrap();
        let refs: Vec<_> = (0..20)
            .map(|i| {
                engine.collection().encode_set(&[
                    format!("w{} shared{}", i % 7, i % 4).as_str(),
                    format!("w{} w{}", (i + 1) % 5, (i + 2) % 7).as_str(),
                ])
            })
            .collect();
        let serial = engine.discover(&refs);
        for threads in [2, 3, 8] {
            let parallel = engine.discover_parallel(&refs, threads);
            assert_eq!(serial.pairs, parallel.pairs, "threads={threads}");
            assert_eq!(serial.stats, parallel.stats, "threads={threads}");
        }
    }

    #[test]
    fn apply_append_extends_results_like_a_rebuild() {
        let raw = vec![vec!["a b c".to_string()], vec!["x y z".to_string()]];
        let cfg = jaccard_cfg(RelatednessMetric::Similarity, 0.9);
        let mut engine = Engine::new(
            silkmoth_collection::Collection::build(&raw, Tokenization::Whitespace),
            cfg,
        )
        .unwrap();
        let out = engine
            .apply(Update::Append(vec![
                vec!["a b c".into()],
                vec!["p q".into()],
            ]))
            .unwrap();
        assert_eq!(out.appended, vec![2, 3]);
        let r = engine.collection().set(0).clone();
        let results = engine.search(&r).results;
        assert_eq!(results.iter().map(|&(s, _)| s).collect::<Vec<_>>(), [0, 2]);
        // Self-discovery sees the appended duplicate too.
        let pairs = engine.discover_self().pairs;
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].r, pairs[0].s), (0, 2));
    }

    #[test]
    fn apply_remove_tombstones_and_compact_renumbers() {
        let raw: Vec<Vec<String>> = (0..5).map(|i| vec![format!("a b c{i}")]).collect();
        let cfg = jaccard_cfg(RelatednessMetric::Similarity, 0.3);
        let mut engine = Engine::new(
            silkmoth_collection::Collection::build(&raw, Tokenization::Whitespace),
            cfg,
        )
        .unwrap();
        let r = engine.collection().set(0).clone();
        assert_eq!(engine.search(&r).results.len(), 5);

        assert_eq!(engine.apply(Update::Remove(vec![1, 3])).unwrap().removed, 2);
        let ids: Vec<_> = engine.search(&r).results.iter().map(|&(s, _)| s).collect();
        assert_eq!(ids, [0, 2, 4], "tombstoned sets never match");
        assert!(matches!(
            engine.apply(Update::Remove(vec![17])),
            Err(UpdateError::NoSuchSet(17))
        ));

        let remap = engine.apply(Update::Compact).unwrap().remap.unwrap();
        assert_eq!(remap, vec![Some(0), None, Some(1), None, Some(2)]);
        assert_eq!(engine.collection().len(), 3);
        let ids: Vec<_> = engine.search(&r).results.iter().map(|&(s, _)| s).collect();
        assert_eq!(ids, [0, 1, 2], "compaction renumbers densely");
    }

    #[test]
    fn apply_is_copy_on_write_for_shared_collections() {
        let (c, r) = table2();
        let shared = Arc::new(c);
        let mut engine = Engine::new(
            shared.clone(),
            jaccard_cfg(RelatednessMetric::Containment, 0.7),
        )
        .unwrap();
        engine.apply(Update::Remove(vec![3])).unwrap();
        // The outside handle still sees the pre-update snapshot…
        assert_eq!(shared.live_len(), 4);
        assert!(!Arc::ptr_eq(engine.collection_arc(), &shared));
        // …while the engine's own search reflects the removal.
        assert!(engine.search(&r).results.is_empty());
    }

    #[test]
    fn execute_is_byte_identical_to_the_fluent_builder() {
        let (c, r) = table2();
        let engine = Engine::new(c, jaccard_cfg(RelatednessMetric::Containment, 0.7)).unwrap();
        let texts: Vec<String> = r.elements.iter().map(|e| e.text.to_string()).collect();
        for (k, floor) in [
            (None, None),
            (Some(2), None),
            (None, Some(0.0)),
            (Some(3), Some(0.2)),
        ] {
            let mut spec = crate::QuerySpec::new(texts.clone());
            let mut query = engine.query(&r);
            if let Some(k) = k {
                spec = spec.with_top_k(k);
                query = query.top_k(k);
            }
            if let Some(f) = floor {
                spec = spec.with_floor(f).unwrap();
                query = query.floor(f);
            }
            let out = engine.execute(&spec);
            let legacy = query.run().unwrap();
            assert_eq!(
                out.hits.len(),
                legacy.results.len(),
                "k={k:?} floor={floor:?}"
            );
            for (a, b) in out.hits.iter().zip(&legacy.results) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
            assert_eq!(out.stats, legacy.stats);
            assert!(!out.timed_out);
            assert!(out.explanations.is_empty());
        }
    }

    #[test]
    fn execute_batch_equals_one_by_one_across_thread_counts() {
        let raw: Vec<Vec<String>> = (0..30)
            .map(|i| {
                (0..3)
                    .map(|j| format!("w{} w{} shared{}", (i * 3 + j) % 7, (i + j) % 5, i % 4))
                    .collect()
            })
            .collect();
        let c = silkmoth_collection::Collection::build(&raw, Tokenization::Whitespace);
        let engine = Engine::new(c, jaccard_cfg(RelatednessMetric::Similarity, 0.5)).unwrap();
        let specs: Vec<crate::QuerySpec> = raw
            .iter()
            .step_by(3)
            .map(|set| {
                crate::QuerySpec::new(set.clone())
                    .with_top_k(4)
                    .with_floor(0.2)
                    .unwrap()
            })
            .collect();
        let serial: Vec<_> = specs.iter().map(|s| engine.execute(s)).collect();
        for threads in [1, 2, 7] {
            let batch = engine.execute_batch(&specs, threads);
            assert_eq!(batch.len(), serial.len(), "threads={threads}");
            for (a, b) in batch.iter().zip(&serial) {
                assert_eq!(a.hits.len(), b.hits.len(), "threads={threads}");
                for (x, y) in a.hits.iter().zip(&b.hits) {
                    assert_eq!(x.0, y.0);
                    assert_eq!(x.1.to_bits(), y.1.to_bits());
                }
                assert_eq!(a.stats, b.stats);
            }
        }
    }

    #[test]
    fn execute_with_explain_attaches_one_explanation_per_hit() {
        let (c, r) = table2();
        let engine = Engine::new(c, jaccard_cfg(RelatednessMetric::Containment, 0.7)).unwrap();
        let texts: Vec<String> = r.elements.iter().map(|e| e.text.to_string()).collect();
        let spec = crate::QuerySpec::new(texts)
            .with_floor(0.0)
            .unwrap()
            .with_top_k(2)
            .with_explain(true);
        let out = engine.execute(&spec);
        assert_eq!(out.hits.len(), 2);
        assert_eq!(out.explanations.len(), 2);
        for ((sid, score), (esid, expl)) in out.hits.iter().zip(&out.explanations) {
            assert_eq!(sid, esid);
            assert!(expl.related);
            assert!((expl.relatedness - score).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_reference_executes_without_panicking() {
        // The wire codec round-trips empty references, so execution must
        // tolerate them: every set matches vacuously with score 0, which
        // only a floor of exactly 0 admits.
        let raw = vec![vec!["a b c".to_string()], vec!["d e".to_string()]];
        for metric in [
            RelatednessMetric::Similarity,
            RelatednessMetric::Containment,
        ] {
            let cfg = jaccard_cfg(metric, 0.5);
            let engine = Engine::new(
                silkmoth_collection::Collection::build(&raw, cfg.tokenization()),
                cfg,
            )
            .unwrap();
            let out = engine.execute(&crate::QuerySpec::new(Vec::new()));
            assert!(out.hits.is_empty(), "{metric:?}: δ=0.5 admits nothing");
            let all = engine.execute(&crate::QuerySpec::new(Vec::new()).with_floor(0.0).unwrap());
            assert_eq!(all.hits.len(), raw.len(), "{metric:?}");
            assert!(all.hits.iter().all(|&(_, score)| score == 0.0));
        }
    }

    #[test]
    fn execute_with_zero_deadline_is_truncated_and_flagged() {
        let (c, r) = table2();
        let engine = Engine::new(c, jaccard_cfg(RelatednessMetric::Containment, 0.7)).unwrap();
        let texts: Vec<String> = r.elements.iter().map(|e| e.text.to_string()).collect();
        let spec = crate::QuerySpec::new(texts)
            .with_floor(0.0)
            .unwrap()
            .with_deadline(std::time::Duration::ZERO);
        let out = engine.execute(&spec);
        assert!(out.timed_out);
        // Nothing was verified before the (already-expired) budget was
        // checked, so the output is the empty — but well-formed — prefix.
        assert_eq!(out.stats.verified, 0);
        assert_eq!(out.hits.len(), out.stats.results);
        // Explanations honor the same budget: none are computed on an
        // expired clock.
        let out = engine.execute(&spec.with_explain(true));
        assert!(out.timed_out);
        assert!(out.explanations.is_empty());
    }

    #[test]
    fn all_scheme_filter_combinations_agree_on_table2_discovery() {
        let (c, _) = table2();
        let c = Arc::new(c);
        let mut reference: Option<Vec<(u32, u32)>> = None;
        for scheme in [
            SignatureScheme::Weighted,
            SignatureScheme::Unweighted,
            SignatureScheme::Skyline,
            SignatureScheme::Dichotomy,
            SignatureScheme::CombinedUnweighted,
        ] {
            for filter in [
                FilterKind::None,
                FilterKind::Check,
                FilterKind::CheckAndNearestNeighbor,
            ] {
                let cfg = EngineConfig {
                    metric: RelatednessMetric::Similarity,
                    similarity: SimilarityFunction::Jaccard,
                    delta: 0.5,
                    alpha: 0.0,
                    scheme,
                    filter,
                    reduction: false,
                };
                let engine = Engine::new(c.clone(), cfg).unwrap();
                let pairs: Vec<(u32, u32)> = engine
                    .discover_self()
                    .pairs
                    .iter()
                    .map(|p| (p.r, p.s))
                    .collect();
                match &reference {
                    None => reference = Some(pairs),
                    Some(want) => assert_eq!(&pairs, want, "{scheme:?} {filter:?}"),
                }
            }
        }
    }
}
