//! The unified engine: RELATED SET SEARCH and RELATED SET DISCOVERY
//! (Problems 1–2, Algorithm 3).

use crate::config::{ConfigError, EngineConfig, RelatednessMetric};
use crate::filter::{PassStats, Restriction, Searcher};
use silkmoth_collection::{Collection, InvertedIndex, SetIdx, SetRecord};

/// One related pair found by discovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelatedPair {
    /// Reference-side index (into the reference list or the collection).
    pub r: u32,
    /// Collection-side set index.
    pub s: SetIdx,
    /// Relatedness score (≥ δ).
    pub score: f64,
}

/// Output of a search pass: related sets plus instrumentation.
#[derive(Debug, Clone)]
pub struct SearchOutput {
    /// Related sets, ascending id, with relatedness scores.
    pub results: Vec<(SetIdx, f64)>,
    /// Pass counters.
    pub stats: PassStats,
}

/// Output of a discovery run.
#[derive(Debug, Clone)]
pub struct DiscoveryOutput {
    /// All related pairs, sorted by `(r, s)`.
    pub pairs: Vec<RelatedPair>,
    /// Aggregated counters over all passes.
    pub stats: PassStats,
}

/// The SilkMoth engine: an indexed collection plus a configuration.
///
/// Construction builds the inverted index once (§3); every subsequent
/// search pass reuses it.
///
/// ```
/// use silkmoth_core::{Engine, EngineConfig, RelatednessMetric};
/// use silkmoth_collection::{Collection, Tokenization};
/// use silkmoth_text::SimilarityFunction;
///
/// let raw = vec![
///     vec!["77 Massachusetts Avenue Boston MA", "Fifth Street Seattle MA 02115"],
///     vec!["1 Main St Springfield IL", "2 Oak Ave Portland OR"],
/// ];
/// let collection = Collection::build(&raw, Tokenization::Whitespace);
/// let cfg = EngineConfig::full(
///     RelatednessMetric::Containment,
///     SimilarityFunction::Jaccard,
///     0.5,
///     0.0,
/// );
/// let engine = Engine::new(&collection, cfg).unwrap();
/// let r = collection.encode_set(&["77 Massachusetts Avenue Boston MA"]);
/// let out = engine.search(&r);
/// assert_eq!(out.results[0].0, 0);
/// ```
pub struct Engine<'a> {
    collection: &'a Collection,
    index: InvertedIndex,
    cfg: EngineConfig,
}

impl<'a> Engine<'a> {
    /// Builds the inverted index and validates the configuration against
    /// the collection's tokenization.
    pub fn new(collection: &'a Collection, cfg: EngineConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let need = cfg.tokenization();
        if collection.tokenization() != need {
            return Err(ConfigError::TokenizationMismatch {
                have: collection.tokenization(),
                need,
            });
        }
        Ok(Self {
            index: InvertedIndex::build(collection),
            collection,
            cfg,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The underlying inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The indexed collection.
    pub fn collection(&self) -> &Collection {
        self.collection
    }

    /// RELATED SET SEARCH (Problem 2): all sets related to reference `r`.
    ///
    /// Encode external references with [`Collection::encode_set`].
    pub fn search(&self, r: &SetRecord) -> SearchOutput {
        let mut searcher = Searcher::new(self.collection, &self.index, self.cfg);
        let (results, stats) = searcher.run(r, Restriction::default());
        SearchOutput { results, stats }
    }

    /// Top-k variant of [`search`](Self::search): the `k` most related
    /// sets with relatedness at least `floor`.
    ///
    /// An extension beyond the paper (its related work §9 discusses top-k
    /// set similarity search): the pass runs with δ = `floor` — so the
    /// same exactness guarantee applies down to the floor — and the
    /// results are ranked by score (ties broken by ascending set id) and
    /// truncated to `k`.
    pub fn search_topk(&self, r: &SetRecord, k: usize, floor: f64) -> SearchOutput {
        let mut cfg = self.cfg;
        cfg.delta = floor.max(f64::MIN_POSITIVE);
        let mut searcher = Searcher::new(self.collection, &self.index, cfg);
        let (mut results, stats) = searcher.run(r, Restriction::default());
        results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        results.truncate(k);
        SearchOutput { results, stats }
    }

    /// RELATED SET DISCOVERY (Problem 1) for references encoded against
    /// this collection's dictionary: one search pass per reference.
    pub fn discover(&self, refs: &[SetRecord]) -> DiscoveryOutput {
        let mut searcher = Searcher::new(self.collection, &self.index, self.cfg);
        let mut pairs = Vec::new();
        let mut stats = PassStats::default();
        for (rid, r) in refs.iter().enumerate() {
            let (results, ps) = searcher.run(r, Restriction::default());
            stats.merge(&ps);
            pairs.extend(results.into_iter().map(|(s, score)| RelatedPair {
                r: rid as u32,
                s,
                score,
            }));
        }
        DiscoveryOutput { pairs, stats }
    }

    /// Self-join discovery (`R = S`, the §8.1 string/schema matching
    /// setup).
    ///
    /// For the symmetric SET-SIMILARITY metric, each unordered pair is
    /// reported once with `r < s` (any related pair is guaranteed to be
    /// found from both sides, so each pass can restrict candidates to
    /// larger ids). For SET-CONTAINMENT the metric is asymmetric and all
    /// ordered pairs `r ≠ s` are reported.
    pub fn discover_self(&self) -> DiscoveryOutput {
        let mut searcher = Searcher::new(self.collection, &self.index, self.cfg);
        let mut pairs = Vec::new();
        let mut stats = PassStats::default();
        for rid in 0..self.collection.len() as SetIdx {
            let (results, ps) = self.self_pass(&mut searcher, rid);
            stats.merge(&ps);
            pairs.extend(results.into_iter().map(|(s, score)| RelatedPair {
                r: rid,
                s,
                score,
            }));
        }
        DiscoveryOutput { pairs, stats }
    }

    /// Parallel [`discover_self`](Self::discover_self) across `threads`
    /// workers (0 = available parallelism). Output is identical to the
    /// serial version.
    pub fn discover_self_parallel(&self, threads: usize) -> DiscoveryOutput {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        let total = self.collection.len();
        if threads <= 1 || total < 2 * threads {
            return self.discover_self();
        }
        let chunk = total.div_ceil(threads);
        let mut outputs: Vec<(Vec<RelatedPair>, PassStats)> = Vec::with_capacity(threads);
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(total);
                    scope.spawn(move |_| {
                        let mut searcher = Searcher::new(self.collection, &self.index, self.cfg);
                        let mut pairs = Vec::new();
                        let mut stats = PassStats::default();
                        for rid in lo as SetIdx..hi as SetIdx {
                            let (results, ps) = self.self_pass(&mut searcher, rid);
                            stats.merge(&ps);
                            pairs.extend(results.into_iter().map(|(s, score)| RelatedPair {
                                r: rid,
                                s,
                                score,
                            }));
                        }
                        (pairs, stats)
                    })
                })
                .collect();
            for h in handles {
                outputs.push(h.join().expect("discovery worker panicked"));
            }
        })
        .expect("crossbeam scope");
        let mut pairs = Vec::new();
        let mut stats = PassStats::default();
        for (p, s) in outputs {
            pairs.extend(p);
            stats.merge(&s);
        }
        pairs.sort_unstable_by(|a, b| a.r.cmp(&b.r).then(a.s.cmp(&b.s)));
        DiscoveryOutput { pairs, stats }
    }

    fn self_pass(&self, searcher: &mut Searcher<'_>, rid: SetIdx) -> (Vec<(SetIdx, f64)>, PassStats) {
        let restriction = match self.cfg.metric {
            RelatednessMetric::Similarity => Restriction {
                min_exclusive: Some(rid),
                skip: None,
            },
            RelatednessMetric::Containment => Restriction {
                min_exclusive: None,
                skip: Some(rid),
            },
        };
        searcher.run(self.collection.set(rid), restriction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FilterKind, SignatureScheme};
    use silkmoth_collection::paper_example::table2;
    use silkmoth_collection::Tokenization;
    use silkmoth_text::SimilarityFunction;

    fn jaccard_cfg(metric: RelatednessMetric, delta: f64) -> EngineConfig {
        EngineConfig::full(metric, SimilarityFunction::Jaccard, delta, 0.0)
    }

    #[test]
    fn search_example2() {
        let (c, r) = table2();
        let engine = Engine::new(&c, jaccard_cfg(RelatednessMetric::Containment, 0.7)).unwrap();
        let out = engine.search(&r);
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].0, 3);
    }

    #[test]
    fn tokenization_mismatch_rejected() {
        let (c, _) = table2();
        let cfg = EngineConfig::full(
            RelatednessMetric::Similarity,
            SimilarityFunction::Eds { q: 2 },
            0.7,
            0.0,
        );
        assert!(matches!(
            Engine::new(&c, cfg),
            Err(ConfigError::TokenizationMismatch { .. })
        ));
    }

    #[test]
    fn discover_self_similarity_reports_unordered_pairs() {
        let raw = vec![
            vec!["a b c", "d e f"],
            vec!["a b c", "d e f"],
            vec!["x y z", "p q r"],
        ];
        let c = silkmoth_collection::Collection::build(&raw, Tokenization::Whitespace);
        let engine = Engine::new(&c, jaccard_cfg(RelatednessMetric::Similarity, 0.9)).unwrap();
        let out = engine.discover_self();
        assert_eq!(out.pairs.len(), 1);
        assert_eq!((out.pairs[0].r, out.pairs[0].s), (0, 1));
        assert!((out.pairs[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn discover_self_containment_reports_ordered_pairs() {
        // Set 0 ⊂ set 1: contain(0→1) holds, contain(1→0) does not (δ high).
        let raw = vec![vec!["a b", "c d"], vec!["a b", "c d", "e f", "g h"]];
        let c = silkmoth_collection::Collection::build(&raw, Tokenization::Whitespace);
        let engine = Engine::new(&c, jaccard_cfg(RelatednessMetric::Containment, 0.9)).unwrap();
        let out = engine.discover_self();
        assert_eq!(out.pairs.len(), 1);
        assert_eq!((out.pairs[0].r, out.pairs[0].s), (0, 1));
    }

    #[test]
    fn parallel_matches_serial() {
        let raw: Vec<Vec<String>> = (0..40)
            .map(|i| {
                (0..3)
                    .map(|j| format!("w{} w{} shared{}", (i * 3 + j) % 7, (i + j) % 5, i % 4))
                    .collect()
            })
            .collect();
        let c = silkmoth_collection::Collection::build(&raw, Tokenization::Whitespace);
        for metric in [RelatednessMetric::Similarity, RelatednessMetric::Containment] {
            let engine = Engine::new(&c, jaccard_cfg(metric, 0.6)).unwrap();
            let serial = engine.discover_self();
            let parallel = engine.discover_self_parallel(4);
            assert_eq!(serial.pairs.len(), parallel.pairs.len());
            for (a, b) in serial.pairs.iter().zip(&parallel.pairs) {
                assert_eq!((a.r, a.s), (b.r, b.s));
                assert!((a.score - b.score).abs() < 1e-12);
            }
            assert_eq!(serial.stats, parallel.stats);
        }
    }

    #[test]
    fn discover_external_references() {
        let (c, r) = table2();
        let engine = Engine::new(&c, jaccard_cfg(RelatednessMetric::Containment, 0.7)).unwrap();
        let refs = vec![r.clone(), c.encode_set(&["zz qq"])];
        let out = engine.discover(&refs);
        assert_eq!(out.pairs.len(), 1);
        assert_eq!(out.pairs[0].r, 0);
        assert_eq!(out.pairs[0].s, 3);
    }

    #[test]
    fn all_scheme_filter_combinations_agree_on_table2_discovery() {
        let (c, _) = table2();
        let mut reference: Option<Vec<(u32, u32)>> = None;
        for scheme in [
            SignatureScheme::Weighted,
            SignatureScheme::Unweighted,
            SignatureScheme::Skyline,
            SignatureScheme::Dichotomy,
            SignatureScheme::CombinedUnweighted,
        ] {
            for filter in [
                FilterKind::None,
                FilterKind::Check,
                FilterKind::CheckAndNearestNeighbor,
            ] {
                let cfg = EngineConfig {
                    metric: RelatednessMetric::Similarity,
                    similarity: SimilarityFunction::Jaccard,
                    delta: 0.5,
                    alpha: 0.0,
                    scheme,
                    filter,
                    reduction: false,
                };
                let engine = Engine::new(&c, cfg).unwrap();
                let pairs: Vec<(u32, u32)> = engine
                    .discover_self()
                    .pairs
                    .iter()
                    .map(|p| (p.r, p.s))
                    .collect();
                match &reference {
                    None => reference = Some(pairs),
                    Some(want) => assert_eq!(&pairs, want, "{scheme:?} {filter:?}"),
                }
            }
        }
    }
}
