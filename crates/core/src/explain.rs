//! Pair-level diagnostics: *why* is (or isn't) a candidate related?
//!
//! [`explain_pair`] re-derives, for one `(R, S)` pair, everything the
//! search pass would compute — the signature, which elements share
//! signature tokens, the check-filter verdicts, the nearest-neighbor
//! estimate, and the final matching score — as an inspectable structure.
//! Useful for debugging threshold choices and for understanding why a
//! near-miss pair fell below δ.
//!
//! The implementation intentionally mirrors (but does not share scratch
//! state with) the production pass in `filter.rs`; a test asserts the two
//! always agree on the final verdict.

use crate::config::EngineConfig;
use crate::phi::Phi;
use crate::signature::{generate, SigKind, SigParams};
use crate::verify::{matching_score, relatedness, size_check, VerifyCost};
use silkmoth_collection::{InvertedIndex, SetRecord};
use silkmoth_text::sim::sorted_overlaps;

/// Per-reference-element diagnostics.
#[derive(Debug, Clone)]
pub struct ElementExplanation {
    /// The element's signature tokens (`l_i`), as dictionary ids.
    pub signature_tokens: Vec<u32>,
    /// Whether the element is saturated (sim-thresh covered).
    pub saturated: bool,
    /// The weighted-scheme similarity bound for non-sharing elements.
    pub raw_bound: f64,
    /// Whether some element of `S` shares a signature token of this
    /// element.
    pub matched: bool,
    /// Best `φ_α` over the sharing elements of `S` (None when unmatched).
    pub best_shared_sim: Option<f64>,
    /// Exact nearest-neighbor `φ_α` over all of `S`.
    pub nearest_neighbor_sim: f64,
}

/// Full diagnostics for one pair.
#[derive(Debug, Clone)]
pub struct PairExplanation {
    /// θ = δ|R|.
    pub theta: f64,
    /// Whether the signature was degenerate (all sets candidates).
    pub degenerate_signature: bool,
    /// Whether `S` passes the metric size check.
    pub size_check_ok: bool,
    /// Whether `S` would be an initial candidate (shares a signature
    /// token, or the signature is degenerate).
    pub is_candidate: bool,
    /// Whether `S` would survive the check filter.
    pub passes_check_filter: bool,
    /// The nearest-neighbor filter's (exact) upper bound Σ max φα.
    pub nn_upper_bound: f64,
    /// Whether the NN bound clears θ.
    pub passes_nn_filter: bool,
    /// The maximum matching score `|R ∩̃_φα S|`.
    pub matching_score: f64,
    /// The relatedness score under the configured metric.
    pub relatedness: f64,
    /// The final verdict: relatedness ≥ δ.
    pub related: bool,
    /// Per-element details.
    pub elements: Vec<ElementExplanation>,
}

/// Explains the full pipeline for one `(R, S)` pair under `cfg`.
pub fn explain_pair(
    r: &SetRecord,
    s: &SetRecord,
    cfg: &EngineConfig,
    index: &InvertedIndex,
) -> PairExplanation {
    let phi = Phi::new(cfg.similarity, cfg.alpha);
    let theta = cfg.delta * r.len() as f64;
    let signature = generate(
        r,
        cfg.scheme,
        SigParams {
            theta,
            alpha: cfg.alpha,
            kind: SigKind::of(cfg.similarity),
        },
        index,
    );

    let mut elements = Vec::with_capacity(r.len());
    let mut nn_upper = 0.0f64;
    let mut any_check_pass = false;
    let mut any_match = false;
    for (re, se) in r.elements.iter().zip(&signature.elems) {
        // Which S elements share a signature token of this element?
        let mut best: Option<f64> = None;
        for selem in s.elements.iter() {
            if sorted_overlaps(&se.tokens, &selem.tokens) {
                let sim = phi.eval(re, selem);
                best = Some(best.map_or(sim, |b: f64| b.max(sim)));
            }
        }
        // Exact nearest neighbor over all of S.
        let nn = s
            .elements
            .iter()
            .map(|selem| phi.eval(re, selem))
            .fold(0.0f64, f64::max);
        let check_thr = if cfg.alpha > 0.0 {
            cfg.alpha.min(se.raw_bound)
        } else {
            se.raw_bound
        };
        if let Some(b) = best {
            any_match = true;
            if b >= check_thr - 1e-12 {
                any_check_pass = true;
            }
        }
        nn_upper += nn;
        elements.push(ElementExplanation {
            signature_tokens: se.tokens.clone(),
            saturated: se.saturated,
            raw_bound: se.raw_bound,
            matched: best.is_some(),
            best_shared_sim: best,
            nearest_neighbor_sim: nn,
        });
    }

    let size_ok = size_check(cfg.metric, cfg.delta, r.len(), s.len());
    let is_candidate = size_ok && (signature.degenerate || any_match);
    let passes_check =
        is_candidate && (signature.degenerate || !signature.check_prunable || any_check_pass);
    let passes_nn = passes_check && nn_upper >= theta - crate::config::FILTER_EPS;

    let mut cost = VerifyCost::default();
    let m = matching_score(r, s, &phi, cfg.reduction_applicable(), &mut cost);
    let rel = relatedness(cfg.metric, m, r.len(), s.len());

    PairExplanation {
        theta,
        degenerate_signature: signature.degenerate,
        size_check_ok: size_ok,
        is_candidate,
        passes_check_filter: passes_check,
        nn_upper_bound: nn_upper,
        passes_nn_filter: passes_nn,
        matching_score: m,
        relatedness: rel,
        related: rel >= cfg.delta - crate::config::VERIFY_EPS,
        elements,
    }
}

impl std::fmt::Display for PairExplanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "θ = {:.4}", self.theta)?;
        writeln!(
            f,
            "candidate: {} (size check {}, degenerate {})",
            self.is_candidate, self.size_check_ok, self.degenerate_signature
        )?;
        writeln!(f, "check filter: {}", self.passes_check_filter)?;
        writeln!(
            f,
            "NN filter: {} (bound {:.4} vs θ {:.4})",
            self.passes_nn_filter, self.nn_upper_bound, self.theta
        )?;
        writeln!(
            f,
            "matching score {:.4} → relatedness {:.4} → related: {}",
            self.matching_score, self.relatedness, self.related
        )?;
        for (i, e) in self.elements.iter().enumerate() {
            writeln!(
                f,
                "  r{}: sig {:?} sat={} bound={:.3} matched={} best={:?} nn={:.3}",
                i + 1,
                e.signature_tokens,
                e.saturated,
                e.raw_bound,
                e.matched,
                e.best_shared_sim,
                e.nearest_neighbor_sim
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FilterKind, RelatednessMetric, SignatureScheme};
    use crate::{brute, Engine};
    use silkmoth_collection::paper_example::table2;
    use silkmoth_text::SimilarityFunction;

    fn cfg(delta: f64, alpha: f64) -> EngineConfig {
        EngineConfig {
            metric: RelatednessMetric::Containment,
            similarity: SimilarityFunction::Jaccard,
            delta,
            alpha,
            scheme: SignatureScheme::Weighted,
            filter: FilterKind::CheckAndNearestNeighbor,
            reduction: false,
        }
    }

    #[test]
    fn explains_the_paper_walkthrough() {
        // Examples 8 & 9: S2 fails the check filter, S3 fails the NN
        // filter, S4 is verified related.
        let (c, r) = table2();
        let index = silkmoth_collection::InvertedIndex::build(&c);
        let conf = cfg(0.7, 0.0);

        let s2 = explain_pair(&r, c.set(1), &conf, &index);
        assert!(s2.is_candidate);
        assert!(!s2.passes_check_filter, "{s2}");

        let s3 = explain_pair(&r, c.set(2), &conf, &index);
        assert!(s3.passes_check_filter);
        assert!(!s3.passes_nn_filter, "{s3}");
        // Example 9's NN estimate: 5/6 + 0.125 + (bounded r3) < θ.
        assert!(s3.nn_upper_bound < s3.theta);

        let s4 = explain_pair(&r, c.set(3), &conf, &index);
        assert!(s4.passes_nn_filter);
        assert!(s4.related);
        assert!((s4.matching_score - (0.8 + 1.0 + 3.0 / 7.0)).abs() < 1e-9);
    }

    #[test]
    fn explanation_agrees_with_engine_verdicts() {
        let (c, r) = table2();
        let index = silkmoth_collection::InvertedIndex::build(&c);
        for delta in [0.3, 0.5, 0.7, 0.9] {
            for alpha in [0.0, 0.4, 0.7] {
                let conf = cfg(delta, alpha);
                let engine = Engine::new(c.clone(), conf).unwrap();
                let engine_hits: Vec<u32> = engine.search(&r).results.iter().map(|x| x.0).collect();
                let brute_hits: Vec<u32> =
                    brute::search(&r, &c, &conf).iter().map(|x| x.0).collect();
                for sid in 0..c.len() as u32 {
                    let ex = explain_pair(&r, c.set(sid), &conf, &index);
                    assert_eq!(
                        ex.related,
                        brute_hits.contains(&sid),
                        "δ={delta} α={alpha} S{}",
                        sid + 1
                    );
                    // The filter stages in the explanation can never reject
                    // a pair the engine reports as related.
                    if engine_hits.contains(&sid) {
                        assert!(ex.is_candidate && ex.passes_check_filter && ex.passes_nn_filter);
                    }
                }
            }
        }
    }

    #[test]
    fn display_renders() {
        let (c, r) = table2();
        let index = silkmoth_collection::InvertedIndex::build(&c);
        let text = explain_pair(&r, c.set(3), &cfg(0.7, 0.0), &index).to_string();
        assert!(text.contains("related: true"));
        assert!(text.contains("NN filter"));
    }
}
