//! α-clamped element similarity evaluation — the engine's `φ_α(r, s)`.

use silkmoth_collection::Element;
use silkmoth_text::sim::{cosine_sorted, dice_sorted, edit_sim_alpha};
use silkmoth_text::{clamp_alpha, jaccard_sorted, SimilarityFunction};

/// Evaluates `φ_α` between elements, dispatching on the configured
/// similarity function. All filter and verification logic goes through
/// this one evaluator, so the engine and the brute-force baseline agree
/// bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct Phi {
    func: SimilarityFunction,
    alpha: f64,
}

impl Phi {
    /// New evaluator for a run's φ and α.
    pub fn new(func: SimilarityFunction, alpha: f64) -> Self {
        Self { func, alpha }
    }

    /// The similarity function in use.
    pub fn func(&self) -> SimilarityFunction {
        self.func
    }

    /// The similarity threshold α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// `φ_α(r, s)` — similarity clamped to 0 below α.
    ///
    /// Two empty elements are identical (similarity 1) under every φ.
    pub fn eval(&self, r: &Element, s: &Element) -> f64 {
        match self.func {
            SimilarityFunction::Jaccard => {
                clamp_alpha(jaccard_sorted(&r.tokens, &s.tokens), self.alpha)
            }
            SimilarityFunction::Dice => clamp_alpha(dice_sorted(&r.tokens, &s.tokens), self.alpha),
            SimilarityFunction::Cosine => {
                clamp_alpha(cosine_sorted(&r.tokens, &s.tokens), self.alpha)
            }
            SimilarityFunction::Eds { .. } | SimilarityFunction::NEds { .. } => {
                edit_sim_alpha(self.func, &r.chars, &s.chars, self.alpha)
            }
        }
    }

    /// Key used by the §5.3 reduction to decide element identity: equal
    /// token vectors for Jaccard, equal text for edit similarity.
    ///
    /// For Jaccard, equal *distinct token sets* imply Jaccard similarity 1
    /// (the identity the reduction proof needs); raw texts may differ in
    /// word order or duplicates, which Jaccard cannot see.
    pub fn identity_key<'a>(&self, e: &'a Element) -> IdentityKey<'a> {
        match self.func {
            SimilarityFunction::Jaccard | SimilarityFunction::Dice | SimilarityFunction::Cosine => {
                IdentityKey::Tokens(&e.tokens)
            }
            _ => IdentityKey::Text(&e.text),
        }
    }

    /// For edit similarity: upper bound on `φ(r, s)` over elements `s`
    /// sharing **no q-gram** with `r` — every q-chunk of `r` then
    /// mismatches, so `LD ≥ ⌈|r|/q⌉` and
    /// `Eds ≤ |r| / (|r| + ⌈|r|/q⌉)` (§7.1's bound with x = 0; `NEds ≤
    /// Eds`). For Jaccard the bound is 0 (no shared token ⟹ similarity 0,
    /// except the empty-vs-empty case handled separately).
    pub fn no_shared_token_bound(&self, r: &Element) -> f64 {
        match self.func {
            SimilarityFunction::Jaccard | SimilarityFunction::Dice | SimilarityFunction::Cosine => {
                0.0
            }
            SimilarityFunction::Eds { q } | SimilarityFunction::NEds { q } => {
                let len = r.char_len as usize;
                if len == 0 {
                    return 0.0;
                }
                let chunks = len.div_ceil(q);
                clamp_alpha(len as f64 / (len + chunks) as f64, self.alpha)
            }
        }
    }
}

/// Ordered identity key for the reduction (see [`Phi::identity_key`]).
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum IdentityKey<'a> {
    /// Sorted distinct token ids (Jaccard).
    Tokens(&'a [u32]),
    /// Raw element text (edit similarity).
    Text(&'a str),
}

#[cfg(test)]
mod tests {
    use super::*;
    use silkmoth_collection::{Collection, Tokenization};

    fn elements(texts: &[&str], t: Tokenization) -> Vec<Element> {
        let raw = vec![texts.to_vec()];
        let c = Collection::build(&raw, t);
        c.set(0).elements.to_vec()
    }

    #[test]
    fn jaccard_eval_with_alpha() {
        let es = elements(&["a b c", "a b d", "x y z"], Tokenization::Whitespace);
        let phi0 = Phi::new(SimilarityFunction::Jaccard, 0.0);
        assert!((phi0.eval(&es[0], &es[1]) - 0.5).abs() < 1e-12);
        let phi_hi = Phi::new(SimilarityFunction::Jaccard, 0.6);
        assert_eq!(phi_hi.eval(&es[0], &es[1]), 0.0);
        assert_eq!(phi0.eval(&es[0], &es[2]), 0.0);
        assert_eq!(phi0.eval(&es[0], &es[0]), 1.0);
    }

    #[test]
    fn eds_eval_matches_direct() {
        let es = elements(&["kitten", "sitting"], Tokenization::QGram { q: 2 });
        let phi = Phi::new(SimilarityFunction::Eds { q: 2 }, 0.0);
        let want = silkmoth_text::eds("kitten", "sitting");
        assert!((phi.eval(&es[0], &es[1]) - want).abs() < 1e-12);
    }

    #[test]
    fn empty_elements_identical() {
        let es = elements(&["", "a"], Tokenization::Whitespace);
        let phi = Phi::new(SimilarityFunction::Jaccard, 0.9);
        assert_eq!(phi.eval(&es[0], &es[0]), 1.0);
        assert_eq!(phi.eval(&es[0], &es[1]), 0.0);
    }

    #[test]
    fn identity_keys() {
        let es = elements(&["b a", "a b", "a a b"], Tokenization::Whitespace);
        let phi = Phi::new(SimilarityFunction::Jaccard, 0.0);
        // Same token set → same key, even though texts differ.
        assert_eq!(phi.identity_key(&es[0]), phi.identity_key(&es[1]));
        assert_eq!(phi.identity_key(&es[0]), phi.identity_key(&es[2]));
        let esq = elements(&["b a", "a b"], Tokenization::QGram { q: 2 });
        let phiq = Phi::new(SimilarityFunction::Eds { q: 2 }, 0.0);
        assert_ne!(phiq.identity_key(&esq[0]), phiq.identity_key(&esq[1]));
    }

    #[test]
    fn no_shared_token_bound_values() {
        let es = elements(&["abcdef"], Tokenization::QGram { q: 3 });
        let phi = Phi::new(SimilarityFunction::Eds { q: 3 }, 0.0);
        // |r| = 6, ⌈6/3⌉ = 2 → 6/8 = 0.75.
        assert!((phi.no_shared_token_bound(&es[0]) - 0.75).abs() < 1e-12);
        // With α above the bound it clamps to 0 (the q < α/(1−α) regime).
        let phi_hi = Phi::new(SimilarityFunction::Eds { q: 3 }, 0.8);
        assert_eq!(phi_hi.no_shared_token_bound(&es[0]), 0.0);
        // Jaccard: always 0.
        let ews = elements(&["a b"], Tokenization::Whitespace);
        let phij = Phi::new(SimilarityFunction::Jaccard, 0.0);
        assert_eq!(phij.no_shared_token_bound(&ews[0]), 0.0);
    }

    #[test]
    fn bound_actually_bounds_no_share_pairs() {
        // Strings sharing no 3-gram still have nonzero Eds; the bound must
        // dominate it.
        let es = elements(&["abcdef", "abXdeY"], Tokenization::QGram { q: 3 });
        let phi = Phi::new(SimilarityFunction::Eds { q: 3 }, 0.0);
        let shared = es[0]
            .tokens
            .iter()
            .any(|t| es[1].tokens.binary_search(t).is_ok());
        assert!(!shared, "fixture must share no 3-gram");
        let sim = phi.eval(&es[0], &es[1]);
        assert!(sim > 0.0, "no-share pairs can still be similar: {sim}");
        assert!(sim <= phi.no_shared_token_bound(&es[0]) + 1e-12);
    }
}
