//! [`QuerySpec`]: the one owned, serializable description of a related
//! set search, executed identically by every layer of the stack.
//!
//! Before this type existed the same search could be phrased four ways —
//! the borrowed [`Query`](crate::Query) builder, raw parameters on the
//! sharded engine, ad-hoc JSON fields, and CLI flags — each with its own
//! validation. A `QuerySpec` is the single artifact they all compile
//! down to:
//!
//! * **Owned and lifetime-free**: the reference is raw element strings,
//!   so a spec can be stored, sent over a socket, or queued. Encoding
//!   against a collection's dictionary happens at execution time (each
//!   engine — or each shard — encodes against its own dictionary, which
//!   preserves bit-identical scores; see `silkmoth-server`'s shard
//!   docs).
//! * **Validated at construction**: [`with_floor`](QuerySpec::with_floor)
//!   is the *only* place a floor is range-checked
//!   ([`ConfigError::FloorOutOfRange`], never clamped). A constructed
//!   spec is valid by invariant, which is why
//!   [`Engine::execute`](crate::Engine::execute) is infallible.
//! * **Deadline-aware**: an optional wall-clock *budget* (a
//!   [`Duration`], measured from the moment execution starts). Expiry is
//!   checked cooperatively in the chunked filter/verify loop, so an
//!   expired query returns a truncated but well-formed [`QueryOutput`]
//!   flagged [`timed_out`](QueryOutput::timed_out) instead of scanning
//!   to the floor.
//! * **Versioned encodings**: `core::wire` carries the binary form (see
//!   [`wire::encode_query_spec`](crate::wire::encode_query_spec)),
//!   `silkmoth-server`'s `queryspec` module the JSON form; both lead
//!   with a format version and reject unknown versions by name.

use std::time::{Duration, Instant};

use crate::config::{ConfigError, EngineConfig};
use crate::explain::PairExplanation;
use crate::filter::PassStats;
use silkmoth_collection::SetIdx;

/// An owned, serializable related-set-search description; see the
/// module docs. Build one with [`QuerySpec::new`] plus the `with_*`
/// setters; every constructed spec is valid.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    reference: Vec<String>,
    top_k: Option<usize>,
    floor: Option<f64>,
    deadline: Option<Duration>,
    want_stats: bool,
    want_explain: bool,
    want_timing: bool,
}

impl QuerySpec {
    /// A spec for `reference` (raw element strings) with the defaults:
    /// no ranking, the engine's own δ as the threshold, no deadline,
    /// stats on, explanations off.
    pub fn new(reference: Vec<String>) -> Self {
        Self {
            reference,
            top_k: None,
            floor: None,
            deadline: None,
            want_stats: true,
            want_explain: false,
            want_timing: false,
        }
    }

    /// Keep only the `k` most related sets — score descending, ties by
    /// ascending set id (the [`rank`](crate::rank) order every layer
    /// shares).
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Override the relatedness threshold for this query. **This is the
    /// single place a floor is validated** — `floor` must lie in
    /// `[0, 1]` or the spec is refused with
    /// [`ConfigError::FloorOutOfRange`]; every entry point (fluent
    /// builder, wire decode, JSON decode, CLI) routes through here.
    pub fn with_floor(mut self, floor: f64) -> Result<Self, ConfigError> {
        if !(0.0..=1.0).contains(&floor) {
            return Err(ConfigError::FloorOutOfRange(floor));
        }
        self.floor = Some(floor);
        Ok(self)
    }

    /// Give the query a wall-clock budget, measured from the start of
    /// its execution. On expiry the execution stops cooperatively and
    /// the output is flagged [`QueryOutput::timed_out`]; results found
    /// before the deadline are still returned (under `top_k`, ranked
    /// among what was verified in time).
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Whether the caller wants [`PassStats`] reported (default true).
    /// Execution always counts; the flag tells serialization layers
    /// whether to ship the counters back.
    pub fn with_stats(mut self, want: bool) -> Self {
        self.want_stats = want;
        self
    }

    /// Whether to attach a [`PairExplanation`] per hit (default false).
    /// Explanations re-derive the full filter pipeline per pair — useful
    /// for debugging thresholds, too expensive for the hot path.
    pub fn with_explain(mut self, want: bool) -> Self {
        self.want_explain = want;
        self
    }

    /// Whether serialization layers should ship [`PhaseTiming`] back
    /// (default false). Like stats, execution always measures; the flag
    /// only governs the response shape.
    pub fn with_timing(mut self, want: bool) -> Self {
        self.want_timing = want;
        self
    }

    /// The reference set's raw element strings.
    pub fn reference(&self) -> &[String] {
        &self.reference
    }

    /// The ranking cutoff, when set.
    pub fn top_k(&self) -> Option<usize> {
        self.top_k
    }

    /// The per-query relatedness floor, when set (always in `[0, 1]`).
    pub fn floor(&self) -> Option<f64> {
        self.floor
    }

    /// The wall-clock budget, when set.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Whether stats should be reported back.
    pub fn want_stats(&self) -> bool {
        self.want_stats
    }

    /// Whether per-hit explanations should be computed.
    pub fn want_explain(&self) -> bool {
        self.want_explain
    }

    /// Whether per-phase timing should be reported back.
    pub fn want_timing(&self) -> bool {
        self.want_timing
    }

    /// The engine configuration with this spec's floor applied.
    /// Infallible because the floor was validated at construction.
    pub(crate) fn effective_cfg(&self, base: &EngineConfig) -> EngineConfig {
        let mut cfg = *base;
        if let Some(floor) = self.floor {
            // A zero floor still needs a positive δ for the pass's
            // threshold arithmetic; MIN_POSITIVE is within VERIFY_EPS of
            // zero, so even relatedness-0 sets verify (floor 0 = rank
            // everything).
            cfg.delta = floor.max(f64::MIN_POSITIVE);
        }
        cfg
    }

    /// The absolute instant this spec's budget runs out if execution
    /// starts now, clamped by an outer `cap` (e.g. a server's
    /// whole-request deadline).
    pub(crate) fn deadline_at(&self, cap: Option<Instant>) -> Option<Instant> {
        let own = self.deadline.map(|budget| Instant::now() + budget);
        match (own, cap) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Wall-clock time spent in each phase of one query execution,
/// measured with [`Instant`] reads *around* the phases — never inside
/// them — so timing is provably off the result path: the hits, stats,
/// and explanations are computed by exactly the same code whether or
/// not anyone reads the clock.
///
/// The phases partition `execute`'s wall time:
///
/// * `stage` — candidate generation: signature selection + inverted
///   index probe (`Searcher::stage`).
/// * `verify` — the chunked check/NN filter + exact maximum-matching
///   verification drain, including ranking.
/// * `explain` — per-hit explanation derivation (zero unless the spec
///   asked for explanations).
///
/// Sharded execution reports the **element-wise maximum** across
/// shards — "the worst shard per phase" — because per-shard durations
/// overlap in wall time under the parallel scatter (their sum can
/// exceed the request's elapsed time; the per-phase max of any single
/// shard cannot). On a single shard the phases sum to ≤ the request's
/// wall time exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Candidate generation (signatures + index probe).
    pub stage: Duration,
    /// Chunked filtering + exact verification + ranking.
    pub verify: Duration,
    /// Per-hit explanation derivation (zero without `want_explain`).
    pub explain: Duration,
}

impl PhaseTiming {
    /// The phases' sum — on one engine, ≤ the query's wall time.
    pub fn total(&self) -> Duration {
        self.stage + self.verify + self.explain
    }

    /// Folds `other` in element-wise by maximum (the sharded merge; see
    /// the type docs for why max, not sum).
    pub fn max_merge(&mut self, other: &PhaseTiming) {
        self.stage = self.stage.max(other.stage);
        self.verify = self.verify.max(other.verify);
        self.explain = self.explain.max(other.explain);
    }
}

/// What executing a [`QuerySpec`] produces, on every layer.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Related sets with relatedness scores. With
    /// [`top_k`](QuerySpec::with_top_k): score descending, ties by
    /// ascending set id, truncated to `k`; otherwise ascending set id.
    pub hits: Vec<(SetIdx, f64)>,
    /// Pass counters (always collected; [`QuerySpec::want_stats`]
    /// only governs whether serialization layers report them).
    pub stats: PassStats,
    /// True when the deadline expired before the pass finished: `hits`
    /// is a well-formed subset of the full answer, and the counters
    /// reflect only the work actually done.
    pub timed_out: bool,
    /// Per-hit diagnostics, aligned with `hits`, when
    /// [`QuerySpec::want_explain`] was set (empty otherwise).
    /// Explaining costs an `O(n³)` matching per hit and honors the same
    /// deadline as the search: on expiry this holds the prefix computed
    /// in time and `timed_out` is set.
    pub explanations: Vec<(SetIdx, PairExplanation)>,
    /// Per-phase wall-clock timing (always measured, like `stats`;
    /// [`QuerySpec::want_timing`] only governs whether serialization
    /// layers report it).
    pub timing: PhaseTiming,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RelatednessMetric;
    use silkmoth_text::SimilarityFunction;

    #[test]
    fn defaults_and_accessors() {
        let spec = QuerySpec::new(vec!["a b".into(), "c".into()]);
        assert_eq!(spec.reference().len(), 2);
        assert_eq!(spec.top_k(), None);
        assert_eq!(spec.floor(), None);
        assert_eq!(spec.deadline(), None);
        assert!(spec.want_stats());
        assert!(!spec.want_explain());
        let spec = spec
            .with_top_k(5)
            .with_floor(0.25)
            .unwrap()
            .with_deadline(Duration::from_millis(10))
            .with_stats(false)
            .with_explain(true);
        assert_eq!(spec.top_k(), Some(5));
        assert_eq!(spec.floor(), Some(0.25));
        assert_eq!(spec.deadline(), Some(Duration::from_millis(10)));
        assert!(!spec.want_stats());
        assert!(spec.want_explain());
    }

    #[test]
    fn floor_is_validated_at_construction() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = QuerySpec::new(vec!["a".into()])
                .with_floor(bad)
                .unwrap_err();
            assert!(matches!(err, ConfigError::FloorOutOfRange(_)), "{bad}");
        }
        // Boundary values are legal.
        for ok in [0.0, 1.0] {
            assert!(QuerySpec::new(vec!["a".into()]).with_floor(ok).is_ok());
        }
    }

    #[test]
    fn effective_cfg_applies_the_floor() {
        let base = EngineConfig::full(
            RelatednessMetric::Similarity,
            SimilarityFunction::Jaccard,
            0.7,
            0.0,
        );
        let spec = QuerySpec::new(vec!["a".into()]);
        assert_eq!(spec.effective_cfg(&base).delta, 0.7);
        let spec = spec.with_floor(0.3).unwrap();
        assert_eq!(spec.effective_cfg(&base).delta, 0.3);
        // Floor 0 becomes the smallest positive δ, never 0.
        let spec = QuerySpec::new(vec!["a".into()]).with_floor(0.0).unwrap();
        assert_eq!(spec.effective_cfg(&base).delta, f64::MIN_POSITIVE);
    }

    #[test]
    fn deadline_at_clamps_to_the_cap() {
        let spec = QuerySpec::new(vec!["a".into()]);
        assert_eq!(spec.deadline_at(None), None);
        let cap = Instant::now() + Duration::from_secs(1);
        assert_eq!(spec.deadline_at(Some(cap)), Some(cap));
        // A long budget is clamped by a shorter cap…
        let spec = spec.with_deadline(Duration::from_secs(3600));
        assert_eq!(spec.deadline_at(Some(cap)), Some(cap));
        // …and a short budget wins over a longer cap.
        let spec = QuerySpec::new(vec!["a".into()]).with_deadline(Duration::ZERO);
        assert!(spec.deadline_at(Some(cap)).unwrap() < cap);
    }
}
