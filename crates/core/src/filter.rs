//! One *search pass*: candidate selection, check filter (Algorithm 1),
//! nearest-neighbor filter (Algorithm 2), and verification (§3, §5, §6.5).

use crate::config::{EngineConfig, FilterKind, FILTER_EPS};
use crate::phi::Phi;
use crate::signature::{generate, SigKind, SigParams, Signature};
use crate::verify::{size_check, verify_pair, VerifyCost};
use silkmoth_collection::{Collection, Element, InvertedIndex, SetIdx, SetRecord};

/// Which candidate sets a pass may consider (self-join symmetry/self
/// exclusions).
#[derive(Debug, Clone, Copy, Default)]
pub struct Restriction {
    /// Only sets with id strictly greater than this are admitted
    /// (symmetric self-join dedup for SET-SIMILARITY discovery).
    pub min_exclusive: Option<SetIdx>,
    /// One set id to skip (the reference itself, for containment
    /// self-joins).
    pub skip: Option<SetIdx>,
}

impl Restriction {
    #[inline]
    fn admits(&self, sid: SetIdx) -> bool {
        if let Some(min) = self.min_exclusive {
            if sid <= min {
                return false;
            }
        }
        if let Some(skip) = self.skip {
            if sid == skip {
                return false;
            }
        }
        true
    }
}

/// Per-pass instrumentation (candidate counts per stage, §8's metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Candidates admitted from the inverted index (post size check).
    pub candidates: usize,
    /// Candidates surviving the check filter.
    pub after_check: usize,
    /// Candidates surviving the nearest-neighbor filter.
    pub after_nn: usize,
    /// Pairs verified with maximum matching.
    pub verified: usize,
    /// Related pairs found.
    pub results: usize,
    /// φ evaluations across filters and verification.
    pub sim_evals: u64,
    /// Identical pairs removed by reduction-based verification.
    pub reduced_pairs: u64,
    /// `Σ |I[t]|` over the signature tokens (Problem 3's objective).
    pub signature_cost: u64,
    /// 1 when no valid signature existed (degenerate pass).
    pub degenerate: u32,
}

impl PassStats {
    /// Accumulates another pass's counters into this one.
    pub fn merge(&mut self, other: &PassStats) {
        self.candidates += other.candidates;
        self.after_check += other.after_check;
        self.after_nn += other.after_nn;
        self.verified += other.verified;
        self.results += other.results;
        self.sim_evals += other.sim_evals;
        self.reduced_pairs += other.reduced_pairs;
        self.signature_cost += other.signature_cost;
        self.degenerate += other.degenerate;
    }
}

/// Reusable search-pass executor with scratch buffers. One `Searcher` per
/// thread; `run` may be called any number of times.
pub struct Searcher<'a> {
    collection: &'a Collection,
    index: &'a InvertedIndex,
    cfg: EngineConfig,
    phi: Phi,
    kind: SigKind,
    // Scratch: candidate slots per set id (stamp-versioned).
    cand_stamp: Vec<u32>,
    cand_slot: Vec<u32>,
    version: u32,
    // Scratch: per-element visited stamps for NNSearch (sized to the
    // largest set in the collection).
    elem_stamp: Vec<u32>,
    elem_version: u32,
    // Scratch: postings of one reference element, for dedup.
    postings: Vec<(SetIdx, u32)>,
}

/// Sentinel for "no computed similarity" in the best-φα cache.
const NONE_SIM: f64 = -1.0;

impl<'a> Searcher<'a> {
    /// Creates a searcher bound to a collection, its index, and a config.
    pub fn new(collection: &'a Collection, index: &'a InvertedIndex, cfg: EngineConfig) -> Self {
        let max_set_len = collection
            .sets()
            .iter()
            .map(SetRecord::len)
            .max()
            .unwrap_or(0);
        Self {
            collection,
            index,
            cfg,
            phi: Phi::new(cfg.similarity, cfg.alpha),
            kind: SigKind::of(cfg.similarity),
            cand_stamp: vec![0; collection.len()],
            cand_slot: vec![0; collection.len()],
            version: 0,
            elem_stamp: vec![0; max_set_len],
            elem_version: 0,
            postings: Vec::new(),
        }
    }

    /// The φ evaluator (shared with verification).
    pub fn phi(&self) -> &Phi {
        &self.phi
    }

    /// Runs one full search pass for reference `r`, returning the related
    /// sets (ascending id) with their relatedness scores.
    pub fn run(
        &mut self,
        r: &SetRecord,
        restriction: Restriction,
    ) -> (Vec<(SetIdx, f64)>, PassStats) {
        let (survivors, mut stats) = self.survivors(r, restriction);

        // ---- Verification (§5.4) -----------------------------------------
        let mut results: Vec<(SetIdx, f64)> = Vec::new();
        let mut vcost = VerifyCost::default();
        for &sid in &survivors {
            stats.verified += 1;
            if let Some(score) = verify_pair(
                r,
                self.collection.set(sid),
                &self.cfg,
                &self.phi,
                &mut vcost,
            ) {
                results.push((sid, score));
            }
        }
        stats.sim_evals += vcost.sim_evals;
        stats.reduced_pairs += vcost.reduced_pairs;
        stats.results = results.len();
        results.sort_unstable_by_key(|&(sid, _)| sid);
        (results, stats)
    }

    /// The pre-verification stages of a pass — candidate selection, check
    /// filter, nearest-neighbor filter — returning the surviving set ids
    /// (in candidate-admission order) and the stats so far. These stages
    /// are index-bound; the `O(n³)` maximum-matching work happens only
    /// when survivors are verified, which streaming callers
    /// ([`Query::iter`](crate::Query::iter)) do lazily.
    pub fn survivors(
        &mut self,
        r: &SetRecord,
        restriction: Restriction,
    ) -> (Vec<SetIdx>, PassStats) {
        let mut pass = self.stage(r, restriction);
        let survivors = self.filter_chunk(r, &mut pass, usize::MAX);
        (survivors, pass.stats)
    }

    /// Candidate selection only: builds a [`StagedPass`] holding the
    /// admitted candidates plus everything the check and nearest-neighbor
    /// filters need, so filtering can proceed incrementally via
    /// [`filter_chunk`](Self::filter_chunk). Chunked callers
    /// ([`Query::iter`](crate::Query::iter)) use this to avoid paying for
    /// filtering the full candidate set when they terminate early.
    pub(crate) fn stage(&mut self, r: &SetRecord, restriction: Restriction) -> StagedPass {
        let mut stats = PassStats::default();
        let theta = self.cfg.delta * r.len() as f64;
        let n = r.len();

        let signature = generate(
            r,
            self.cfg.scheme,
            SigParams {
                theta,
                alpha: self.cfg.alpha,
                kind: self.kind,
            },
            self.index,
        );
        stats.signature_cost = signature.cost(self.index) as u64;
        stats.degenerate = u32::from(signature.degenerate);

        // ---- Candidate selection (+ similarity computation for the check
        // filter's cache) -------------------------------------------------
        self.version += 1;
        let mut cand_sets: Vec<SetIdx> = Vec::new();
        // best φα per (candidate, reference element), flattened.
        let mut best: Vec<f64> = Vec::new();
        let compute_sims = self.cfg.filter >= FilterKind::Check;

        if signature.degenerate {
            for sid in 0..self.collection.len() as SetIdx {
                if restriction.admits(sid)
                    && self.collection.is_live(sid)
                    && size_check(
                        self.cfg.metric,
                        self.cfg.delta,
                        n,
                        self.collection.set(sid).len(),
                    )
                {
                    cand_sets.push(sid);
                }
            }
            best.resize(cand_sets.len() * n, NONE_SIM);
        } else {
            for (i, sig_elem) in signature.elems.iter().enumerate() {
                if sig_elem.tokens.is_empty() {
                    continue;
                }
                // Gather and dedupe the postings of this element's
                // signature tokens.
                self.postings.clear();
                for &t in &sig_elem.tokens {
                    for p in self.index.list(t) {
                        self.postings.push((p.set, p.elem));
                    }
                }
                self.postings.sort_unstable();
                self.postings.dedup();
                for k in 0..self.postings.len() {
                    let (sid, eid) = self.postings[k];
                    if !restriction.admits(sid) {
                        continue;
                    }
                    // Locate or admit the candidate slot. Tombstoned sets
                    // keep their postings in the index but are never
                    // admitted as candidates.
                    let slot = if self.cand_stamp[sid as usize] == self.version {
                        self.cand_slot[sid as usize] as usize
                    } else {
                        if !self.collection.is_live(sid) {
                            continue;
                        }
                        if !size_check(
                            self.cfg.metric,
                            self.cfg.delta,
                            n,
                            self.collection.set(sid).len(),
                        ) {
                            continue;
                        }
                        let slot = cand_sets.len();
                        self.cand_stamp[sid as usize] = self.version;
                        self.cand_slot[sid as usize] = slot as u32;
                        cand_sets.push(sid);
                        best.resize(best.len() + n, NONE_SIM);
                        slot
                    };
                    if compute_sims {
                        let s_elem = &self.collection.set(sid).elements[eid as usize];
                        let sim = self.phi.eval(&r.elements[i], s_elem);
                        stats.sim_evals += 1;
                        let cell = &mut best[slot * n + i];
                        if sim > *cell {
                            *cell = sim;
                        }
                    }
                }
            }
        }
        stats.candidates = cand_sets.len();

        // Check-filter thresholds (Algorithm 1, §6.5 extension). Pass
        // condition: φα(ri, s) ≥ min(α, raw_bound_i) for some computed pair
        // (α = 0 degenerates to φ ≥ raw_bound_i). Pruning on failure is
        // sound only when Σ bounds < θ (always true for weighted-style
        // schemes; `check_prunable` is false otherwise and the filter only
        // primes the NN reuse cache).
        let check_thr: Vec<f64> = signature
            .elems
            .iter()
            .map(|se| {
                if self.cfg.alpha > 0.0 {
                    self.cfg.alpha.min(se.raw_bound)
                } else {
                    se.raw_bound
                }
            })
            .collect();

        StagedPass {
            cand_sets,
            best,
            check_thr,
            ub: unmatched_upper_bounds(&signature, self.cfg.alpha),
            theta,
            n,
            check_prunable: compute_sims && !signature.degenerate && signature.check_prunable,
            cursor: 0,
            est: vec![0.0; n],
            exact: vec![false; n],
            stats,
        }
    }

    /// Runs the check and nearest-neighbor filters over the next `max`
    /// candidates of a [`StagedPass`] (admission order), returning the
    /// surviving set ids. Both filters are per-candidate, so chunking never
    /// changes which candidates survive or the accumulated stats — a full
    /// drain is identical to [`survivors`](Self::survivors).
    pub(crate) fn filter_chunk(
        &mut self,
        r: &SetRecord,
        pass: &mut StagedPass,
        max: usize,
    ) -> Vec<SetIdx> {
        let n = pass.n;
        let nn_filter = self.cfg.filter == FilterKind::CheckAndNearestNeighbor;
        let hi = pass.cursor.saturating_add(max).min(pass.cand_sets.len());
        let mut out = Vec::new();
        while pass.cursor < hi {
            let slot = pass.cursor;
            pass.cursor += 1;

            // ---- Check filter (Algorithm 1) ------------------------------
            if pass.check_prunable
                && !(0..n).any(|i| pass.best[slot * n + i] >= pass.check_thr[i] - 1e-12)
            {
                continue;
            }
            pass.stats.after_check += 1;

            // ---- Nearest-neighbor filter (Algorithm 2) -------------------
            if nn_filter && !self.nn_admits(r, pass, slot) {
                continue;
            }
            pass.stats.after_nn += 1;
            out.push(pass.cand_sets[slot]);
        }
        out
    }

    /// One candidate's nearest-neighbor filter decision (§5.2, §6.5
    /// extension).
    fn nn_admits(&mut self, r: &SetRecord, pass: &mut StagedPass, slot: usize) -> bool {
        let n = pass.n;
        let sid = pass.cand_sets[slot];
        let s_set = self.collection.set(sid);
        let mut total = 0.0f64;
        for i in 0..n {
            let b = pass.best[slot * n + i];
            // est_i = max(best computed φα, bound on uncomputed elements);
            // exact when the computed value dominates the bound (computation
            // reuse, §5.2) or the bound is 0 (saturated / α-clamped
            // elements: uncomputed elements contribute exactly 0).
            let (e, ex) = if b >= pass.ub[i] {
                (b.max(0.0), true)
            } else {
                (pass.ub[i], pass.ub[i] == 0.0)
            };
            pass.est[i] = e;
            pass.exact[i] = ex;
            total += e;
        }
        if total < pass.theta - FILTER_EPS {
            return false;
        }
        for i in 0..n {
            if pass.exact[i] {
                continue;
            }
            let nn = self
                .nn_search(&r.elements[i], sid, s_set, &mut pass.stats)
                .min(pass.est[i]);
            total += nn - pass.est[i];
            if total < pass.theta - FILTER_EPS {
                return false;
            }
        }
        true
    }

    /// `NNSearch(r, S, I)` (§5.2): upper bound on `max_{s∈S} φα(r, s)` via
    /// the inverted index, exact except in the edit-similarity regime where
    /// elements sharing no q-gram can still clear α (then the §7.1 chunk
    /// bound is folded in).
    fn nn_search(
        &mut self,
        r_elem: &Element,
        sid: SetIdx,
        s_set: &SetRecord,
        stats: &mut PassStats,
    ) -> f64 {
        if r_elem.tokens.is_empty() {
            // An empty element matches exactly the empty elements of S.
            let has_empty = s_set.elements.iter().any(|e| e.tokens.is_empty());
            return if has_empty { 1.0 } else { 0.0 };
        }
        self.elem_version += 1;
        let mut best = 0.0f64;
        let mut seen = 0usize;
        for &t in r_elem.tokens.iter() {
            for p in self.index.postings_in_set(t, sid) {
                let e = p.elem as usize;
                if self.elem_stamp[e] == self.elem_version {
                    continue;
                }
                self.elem_stamp[e] = self.elem_version;
                seen += 1;
                let sim = self.phi.eval(r_elem, &s_set.elements[e]);
                stats.sim_evals += 1;
                if sim > best {
                    best = sim;
                }
            }
        }
        if seen < s_set.len() {
            // Unvisited elements share no token with r; for Jaccard they
            // score 0, for edit similarity they are bounded by the q-chunk
            // mismatch bound.
            best = best.max(self.phi.no_shared_token_bound(r_elem));
        }
        best
    }
}

/// Candidate-selection output consumed incrementally by
/// [`Searcher::filter_chunk`]: the admitted candidates (in admission
/// order), the per-(candidate, reference-element) similarity cache the
/// filters read, the filter thresholds, and the running [`PassStats`].
///
/// Selection is index-bound and runs once; filtering then proceeds in
/// chunks so early-terminating callers never pay for filtering (and
/// verifying) the tail of a large candidate set.
#[derive(Debug)]
pub(crate) struct StagedPass {
    cand_sets: Vec<SetIdx>,
    /// Best computed φα per (candidate slot, reference element), flattened
    /// row-major with stride `n`.
    best: Vec<f64>,
    /// Check-filter threshold per reference element.
    check_thr: Vec<f64>,
    /// NN upper bound per reference element with no computed similarity.
    ub: Vec<f64>,
    /// θ = δ·|R|.
    theta: f64,
    /// |R|.
    n: usize,
    /// Whether the check filter may prune (vs only priming the NN cache).
    check_prunable: bool,
    /// Next unfiltered candidate slot.
    cursor: usize,
    // Scratch for the NN filter's per-candidate estimates.
    est: Vec<f64>,
    exact: Vec<bool>,
    /// Stats so far: selection counters are final, `after_check`/
    /// `after_nn`/`sim_evals` grow as chunks are filtered.
    pub(crate) stats: PassStats,
}

impl StagedPass {
    /// Candidates not yet run through the filters.
    pub(crate) fn remaining(&self) -> usize {
        self.cand_sets.len() - self.cursor
    }
}

/// Per-element upper bound on `φα(ri, s)` for candidates where `ri`
/// matched **nothing** (no shared signature token): 0 for saturated
/// elements (sim-thresh validity) and for unsaturated elements whose raw
/// bound is already below α (the clamp zeroes them); otherwise the raw
/// weighted-scheme bound (§6.5).
fn unmatched_upper_bounds(signature: &Signature, alpha: f64) -> Vec<f64> {
    signature
        .elems
        .iter()
        .map(|se| {
            if se.saturated || (alpha > 0.0 && se.raw_bound < alpha) {
                0.0
            } else {
                se.raw_bound
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RelatednessMetric, SignatureScheme};
    use silkmoth_collection::paper_example::table2;
    use silkmoth_text::SimilarityFunction;

    fn config(
        metric: RelatednessMetric,
        delta: f64,
        alpha: f64,
        scheme: SignatureScheme,
        filter: FilterKind,
    ) -> EngineConfig {
        EngineConfig {
            metric,
            similarity: SimilarityFunction::Jaccard,
            delta,
            alpha,
            scheme,
            filter,
            reduction: false,
        }
    }

    fn run(cfg: EngineConfig) -> (Vec<(SetIdx, f64)>, PassStats) {
        let (c, r) = table2();
        let index = silkmoth_collection::InvertedIndex::build(&c);
        let mut searcher = Searcher::new(&c, &index, cfg);
        searcher.run(&r, Restriction::default())
    }

    #[test]
    fn example3_containment_search_returns_s4() {
        // δ = 0.7, α = 0, containment: only S4 is related.
        let cfg = config(
            RelatednessMetric::Containment,
            0.7,
            0.0,
            SignatureScheme::Weighted,
            FilterKind::CheckAndNearestNeighbor,
        );
        let (results, stats) = run(cfg);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, 3); // S4
        assert!((results[0].1 - 0.743).abs() < 1e-3);
        assert!(stats.candidates <= 4);
        assert!(stats.after_nn <= stats.after_check);
    }

    #[test]
    fn example3_candidates_are_s2_s3_s4() {
        // With the Example 6/7 weighted signature, the initial candidates
        // are S2, S3, S4 (Figure 2).
        let cfg = config(
            RelatednessMetric::Containment,
            0.7,
            0.0,
            SignatureScheme::Weighted,
            FilterKind::None,
        );
        let (_, stats) = run(cfg);
        assert_eq!(stats.candidates, 3);
    }

    #[test]
    fn example8_check_filter_drops_s2() {
        // Example 8: S2 fails the check filter; S3, S4 pass.
        let cfg = config(
            RelatednessMetric::Containment,
            0.7,
            0.0,
            SignatureScheme::Weighted,
            FilterKind::Check,
        );
        let (results, stats) = run(cfg);
        assert_eq!(stats.candidates, 3);
        assert_eq!(stats.after_check, 2);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, 3);
    }

    #[test]
    fn example9_nn_filter_drops_s3() {
        // Example 9: the NN filter prunes S3; only S4 reaches verification.
        let cfg = config(
            RelatednessMetric::Containment,
            0.7,
            0.0,
            SignatureScheme::Weighted,
            FilterKind::CheckAndNearestNeighbor,
        );
        let (results, stats) = run(cfg);
        assert_eq!(stats.after_check, 2);
        assert_eq!(stats.after_nn, 1);
        assert_eq!(stats.verified, 1);
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn filters_never_change_results() {
        for metric in [
            RelatednessMetric::Similarity,
            RelatednessMetric::Containment,
        ] {
            for scheme in [
                SignatureScheme::Weighted,
                SignatureScheme::Dichotomy,
                SignatureScheme::Skyline,
                SignatureScheme::Unweighted,
            ] {
                for delta in [0.5, 0.7, 0.85] {
                    let mut outs = Vec::new();
                    for filter in [
                        FilterKind::None,
                        FilterKind::Check,
                        FilterKind::CheckAndNearestNeighbor,
                    ] {
                        let cfg = config(metric, delta, 0.0, scheme, filter);
                        outs.push(run(cfg).0);
                    }
                    assert_eq!(outs[0], outs[1], "{metric:?} {scheme:?} δ={delta}");
                    assert_eq!(outs[1], outs[2], "{metric:?} {scheme:?} δ={delta}");
                }
            }
        }
    }

    #[test]
    fn alpha_variants_agree_across_schemes() {
        for alpha in [0.25, 0.5, 0.7] {
            let mut results = Vec::new();
            for scheme in [
                SignatureScheme::Weighted,
                SignatureScheme::Skyline,
                SignatureScheme::Dichotomy,
                SignatureScheme::CombinedUnweighted,
            ] {
                let cfg = config(
                    RelatednessMetric::Containment,
                    0.7,
                    alpha,
                    scheme,
                    FilterKind::CheckAndNearestNeighbor,
                );
                results.push(run(cfg).0);
            }
            for w in results.windows(2) {
                assert_eq!(w[0], w[1], "α={alpha}");
            }
        }
    }

    #[test]
    fn restriction_excludes_sets() {
        let cfg = config(
            RelatednessMetric::Containment,
            0.7,
            0.0,
            SignatureScheme::Weighted,
            FilterKind::CheckAndNearestNeighbor,
        );
        let (c, r) = table2();
        let index = silkmoth_collection::InvertedIndex::build(&c);
        let mut searcher = Searcher::new(&c, &index, cfg);
        let (results, _) = searcher.run(
            &r,
            Restriction {
                min_exclusive: Some(3),
                skip: None,
            },
        );
        assert!(results.is_empty());
        let (results, _) = searcher.run(
            &r,
            Restriction {
                min_exclusive: None,
                skip: Some(3),
            },
        );
        assert!(results.is_empty());
    }

    #[test]
    fn searcher_is_reusable() {
        let cfg = config(
            RelatednessMetric::Containment,
            0.7,
            0.0,
            SignatureScheme::Dichotomy,
            FilterKind::CheckAndNearestNeighbor,
        );
        let (c, r) = table2();
        let index = silkmoth_collection::InvertedIndex::build(&c);
        let mut searcher = Searcher::new(&c, &index, cfg);
        let first = searcher.run(&r, Restriction::default()).0;
        for _ in 0..5 {
            assert_eq!(searcher.run(&r, Restriction::default()).0, first);
        }
    }

    #[test]
    fn size_check_prunes_similarity_candidates() {
        // Under SET-SIMILARITY with a tall δ, tiny sets cannot be similar
        // to R (|R| = 3): a 1-element set is outside [δ·3, 3/δ].
        let raw = vec![vec!["t1"], vec!["t1 x", "t1 y", "t1 z"]];
        let c = silkmoth_collection::Collection::build(
            &raw,
            silkmoth_collection::Tokenization::Whitespace,
        );
        let index = silkmoth_collection::InvertedIndex::build(&c);
        let r = c.encode_set(&["t1 a", "t1 b", "t1 c"]);
        // Unweighted scheme: "t1" survives the c−1 removals, so both sets
        // share a signature token and only the size check separates them.
        let cfg = config(
            RelatednessMetric::Similarity,
            0.8,
            0.0,
            SignatureScheme::Unweighted,
            FilterKind::None,
        );
        let mut searcher = Searcher::new(&c, &index, cfg);
        let (_, stats) = searcher.run(&r, Restriction::default());
        assert_eq!(stats.candidates, 1, "the singleton set must be size-pruned");
    }
}
