//! Brute-force baseline: every pair verified with maximum matching, no
//! signatures, no filters (the `O(n³m²)` strawman of §1).
//!
//! The engine is guaranteed to produce exactly this output (§1: "SILKMOTH
//! is guaranteed to produce the exact same output as the naive method");
//! the equivalence tests in this crate and in `tests/` hold SilkMoth to
//! that promise on every scheme × filter × metric × φ combination.

use crate::config::{EngineConfig, RelatednessMetric};
use crate::engine::RelatedPair;
use crate::phi::Phi;
use crate::verify::{verify_pair, VerifyCost};
use silkmoth_collection::{Collection, SetRecord};

/// All live sets of `collection` related to `r`, by exhaustive
/// verification (tombstoned sets are skipped, mirroring the engine).
pub fn search(r: &SetRecord, collection: &Collection, cfg: &EngineConfig) -> Vec<(u32, f64)> {
    let phi = Phi::new(cfg.similarity, cfg.alpha);
    let mut cost = VerifyCost::default();
    let mut out = Vec::new();
    for sid in collection.live_ids() {
        if let Some(score) = verify_pair(r, collection.set(sid), cfg, &phi, &mut cost) {
            out.push((sid, score));
        }
    }
    out
}

/// All related pairs among external references × collection.
pub fn discover(
    refs: &[SetRecord],
    collection: &Collection,
    cfg: &EngineConfig,
) -> Vec<RelatedPair> {
    let mut out = Vec::new();
    for (rid, r) in refs.iter().enumerate() {
        for (s, score) in search(r, collection, cfg) {
            out.push(RelatedPair {
                r: rid as u32,
                s,
                score,
            });
        }
    }
    out
}

/// Self-join discovery with the same pair conventions as
/// [`Engine::discover_self`](crate::Engine::discover_self): unordered
/// `r < s` pairs for SET-SIMILARITY, ordered `r ≠ s` pairs for
/// SET-CONTAINMENT.
pub fn discover_self(collection: &Collection, cfg: &EngineConfig) -> Vec<RelatedPair> {
    let phi = Phi::new(cfg.similarity, cfg.alpha);
    let mut cost = VerifyCost::default();
    let mut out = Vec::new();
    for rid in collection.live_ids() {
        let r = collection.set(rid);
        for sid in collection.live_ids() {
            let admit = match cfg.metric {
                RelatednessMetric::Similarity => sid > rid,
                RelatednessMetric::Containment => sid != rid,
            };
            if !admit {
                continue;
            }
            if let Some(score) = verify_pair(r, collection.set(sid), cfg, &phi, &mut cost) {
                out.push(RelatedPair {
                    r: rid,
                    s: sid,
                    score,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FilterKind, SignatureScheme};
    use crate::Engine;
    use silkmoth_collection::paper_example::table2;
    use silkmoth_text::SimilarityFunction;

    #[test]
    fn engine_matches_brute_on_table2() {
        let (c, r) = table2();
        for metric in [
            RelatednessMetric::Similarity,
            RelatednessMetric::Containment,
        ] {
            for delta in [0.3, 0.5, 0.7, 0.9] {
                let cfg = EngineConfig::full(metric, SimilarityFunction::Jaccard, delta, 0.0);
                let engine = Engine::new(c.clone(), cfg).unwrap();
                let fast = engine.search(&r).results;
                let slow = search(&r, &c, &cfg);
                assert_eq!(fast.len(), slow.len(), "{metric:?} δ={delta}");
                for (a, b) in fast.iter().zip(&slow) {
                    assert_eq!(a.0, b.0);
                    assert!((a.1 - b.1).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn engine_matches_brute_self_join() {
        let (c, _) = table2();
        for metric in [
            RelatednessMetric::Similarity,
            RelatednessMetric::Containment,
        ] {
            for delta in [0.4, 0.6] {
                let cfg = EngineConfig {
                    metric,
                    similarity: SimilarityFunction::Jaccard,
                    delta,
                    alpha: 0.0,
                    scheme: SignatureScheme::Dichotomy,
                    filter: FilterKind::CheckAndNearestNeighbor,
                    reduction: true,
                };
                let engine = Engine::new(c.clone(), cfg).unwrap();
                let fast = engine.discover_self().pairs;
                let slow = discover_self(&c, &cfg);
                let f: Vec<(u32, u32)> = fast.iter().map(|p| (p.r, p.s)).collect();
                let s: Vec<(u32, u32)> = slow.iter().map(|p| (p.r, p.s)).collect();
                assert_eq!(f, s, "{metric:?} δ={delta}");
            }
        }
    }
}
