//! Verification: maximum matching score, relatedness metrics, size checks
//! (§5.3, §5.4 and footnote 6).

use crate::config::{EngineConfig, RelatednessMetric, VERIFY_EPS};
use crate::phi::Phi;
use silkmoth_collection::SetRecord;
use silkmoth_matching::{
    max_weight_assignment, reduce_identical, sparse_max_matching, Edge, WeightMatrix,
};

/// Counters describing one verification call, for instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyCost {
    /// φ evaluations performed while building the weight matrix.
    pub sim_evals: u64,
    /// Identical pairs removed by the reduction (0 when it did not apply).
    pub reduced_pairs: u64,
}

/// Computes the maximum matching score `|R ∩̃_φα S|` (§2.1), applying the
/// triangle-inequality reduction (§5.3) when the configuration allows it.
pub fn matching_score(
    r: &SetRecord,
    s: &SetRecord,
    phi: &Phi,
    use_reduction: bool,
    cost: &mut VerifyCost,
) -> f64 {
    if r.is_empty() || s.is_empty() {
        return 0.0;
    }
    if use_reduction {
        let r_keys: Vec<_> = r.elements.iter().map(|e| phi.identity_key(e)).collect();
        let s_keys: Vec<_> = s.elements.iter().map(|e| phi.identity_key(e)).collect();
        let red = reduce_identical(&r_keys, &s_keys);
        cost.reduced_pairs += red.identical_pairs as u64;
        let w = WeightMatrix::from_fn(red.rest_r.len(), red.rest_s.len(), |i, j| {
            phi.eval(&r.elements[red.rest_r[i]], &s.elements[red.rest_s[j]])
        });
        cost.sim_evals += (red.rest_r.len() * red.rest_s.len()) as u64;
        red.identical_pairs as f64 + max_weight_assignment(&w).score
    } else if phi.alpha() > 0.0 {
        // With α-clamping most weights are exactly zero; zero edges never
        // improve a non-negative matching, so solve over the positive
        // edges only (silkmoth_matching::sparse — same score, smaller
        // Hungarian instance).
        let mut edges = Vec::new();
        for (i, re) in r.elements.iter().enumerate() {
            for (j, se) in s.elements.iter().enumerate() {
                let v = phi.eval(re, se);
                if v > 0.0 {
                    edges.push(Edge {
                        row: i,
                        col: j,
                        weight: v,
                    });
                }
            }
        }
        cost.sim_evals += (r.len() * s.len()) as u64;
        sparse_max_matching(&edges)
    } else {
        let w = WeightMatrix::from_fn(r.len(), s.len(), |i, j| {
            phi.eval(&r.elements[i], &s.elements[j])
        });
        cost.sim_evals += (r.len() * s.len()) as u64;
        max_weight_assignment(&w).score
    }
}

/// Relatedness of `R` and `S` from a matching score `m` (Definitions 1–2).
///
/// * `Similarity`: `m / (|R| + |S| − m)`; two empty sets are defined as
///   fully related (score 1).
/// * `Containment`: `m / |R|`; an empty `R` scores 0. The definitional
///   precondition `|R| ≤ |S|` is *not* enforced here — the engine applies
///   the necessary size check `|S| ≥ δ|R|` instead, so partially-smaller
///   `S` are judged on their matching score alone (documented deviation;
///   see DESIGN.md §4).
pub fn relatedness(metric: RelatednessMetric, m: f64, r_len: usize, s_len: usize) -> f64 {
    match metric {
        RelatednessMetric::Similarity => {
            let denom = r_len as f64 + s_len as f64 - m;
            if denom <= 0.0 {
                // Only possible when both sets are empty (m = 0).
                1.0
            } else {
                m / denom
            }
        }
        RelatednessMetric::Containment => {
            if r_len == 0 {
                0.0
            } else {
                m / r_len as f64
            }
        }
    }
}

/// Fully verifies one pair: matching score → relatedness → threshold.
/// Returns the relatedness score when the pair is related.
pub fn verify_pair(
    r: &SetRecord,
    s: &SetRecord,
    cfg: &EngineConfig,
    phi: &Phi,
    cost: &mut VerifyCost,
) -> Option<f64> {
    let m = matching_score(r, s, phi, cfg.reduction_applicable(), cost);
    let rel = relatedness(cfg.metric, m, r.len(), s.len());
    (rel >= cfg.delta - VERIFY_EPS).then_some(rel)
}

/// The candidate-time size check (footnote 6, plus the containment
/// necessary condition): true when `|S| = s_len` could possibly be related
/// to an `|R| = r_len` reference.
///
/// * `Similarity`: `δ·max ≤ min`, i.e. `δ|R| ≤ |S| ≤ |R|/δ` — because the
///   matching score is at most `min(|R|, |S|)`.
/// * `Containment`: `|S| ≥ δ|R|` — because the score is at most `|S|`.
pub fn size_check(metric: RelatednessMetric, delta: f64, r_len: usize, s_len: usize) -> bool {
    const EPS: f64 = 1e-9;
    let (r_len, s_len) = (r_len as f64, s_len as f64);
    match metric {
        RelatednessMetric::Similarity => delta * r_len.max(s_len) <= r_len.min(s_len) + EPS,
        RelatednessMetric::Containment => s_len + EPS >= delta * r_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SignatureScheme;
    use silkmoth_collection::paper_example::table2;
    use silkmoth_text::SimilarityFunction;

    fn cfg(metric: RelatednessMetric, delta: f64, alpha: f64) -> EngineConfig {
        EngineConfig {
            metric,
            similarity: SimilarityFunction::Jaccard,
            delta,
            alpha,
            scheme: SignatureScheme::Dichotomy,
            filter: crate::config::FilterKind::CheckAndNearestNeighbor,
            reduction: true,
        }
    }

    #[test]
    fn example2_containment_s4() {
        // |R ∩̃ S4| = 0.8 + 1 + 3/7 ≈ 2.229; contain = 2.229/3 ≈ 0.743.
        let (c, r) = table2();
        let phi = Phi::new(SimilarityFunction::Jaccard, 0.0);
        let mut cost = VerifyCost::default();
        let m = matching_score(&r, c.set(3), &phi, false, &mut cost);
        assert!((m - (0.8 + 1.0 + 3.0 / 7.0)).abs() < 1e-9);
        let rel = relatedness(RelatednessMetric::Containment, m, 3, 3);
        assert!((rel - m / 3.0).abs() < 1e-12);
        assert!(rel > 0.7);
        // And S1..S3 fall below δ = 0.7.
        for sid in 0..3 {
            let m = matching_score(&r, c.set(sid), &phi, false, &mut cost);
            assert!(relatedness(RelatednessMetric::Containment, m, 3, c.set(sid).len()) < 0.7);
        }
    }

    #[test]
    fn reduction_agrees_with_plain() {
        let (c, r) = table2();
        let phi = Phi::new(SimilarityFunction::Jaccard, 0.0);
        for sid in 0..4 {
            let mut c1 = VerifyCost::default();
            let mut c2 = VerifyCost::default();
            let plain = matching_score(&r, c.set(sid), &phi, false, &mut c1);
            let reduced = matching_score(&r, c.set(sid), &phi, true, &mut c2);
            assert!((plain - reduced).abs() < 1e-9, "S{}", sid + 1);
        }
    }

    #[test]
    fn reduction_counts_identicals() {
        // R's r2 = "t4 t5 t7 t9 t10" is identical (as a token set) to s42.
        let (c, r) = table2();
        let phi = Phi::new(SimilarityFunction::Jaccard, 0.0);
        let mut cost = VerifyCost::default();
        let _ = matching_score(&r, c.set(3), &phi, true, &mut cost);
        assert_eq!(cost.reduced_pairs, 1);
        // The reduced matrix is 2×2 instead of 3×3.
        assert_eq!(cost.sim_evals, 4);
    }

    #[test]
    fn verify_pair_respects_delta() {
        let (c, r) = table2();
        let phi = Phi::new(SimilarityFunction::Jaccard, 0.0);
        let mut cost = VerifyCost::default();
        let conf = cfg(RelatednessMetric::Containment, 0.7, 0.0);
        assert!(verify_pair(&r, c.set(3), &conf, &phi, &mut cost).is_some());
        assert!(verify_pair(&r, c.set(0), &conf, &phi, &mut cost).is_none());
        let strict = cfg(RelatednessMetric::Containment, 0.75, 0.0);
        assert!(verify_pair(&r, c.set(3), &strict, &phi, &mut cost).is_none());
    }

    #[test]
    fn similarity_metric_formula() {
        // Example 2 note: similar(R, S4) = M / (3 + 3 − M).
        let (c, r) = table2();
        let phi = Phi::new(SimilarityFunction::Jaccard, 0.0);
        let mut cost = VerifyCost::default();
        let m = matching_score(&r, c.set(3), &phi, false, &mut cost);
        let rel = relatedness(RelatednessMetric::Similarity, m, 3, 3);
        assert!((rel - m / (6.0 - m)).abs() < 1e-12);
    }

    #[test]
    fn empty_set_edge_cases() {
        assert_eq!(relatedness(RelatednessMetric::Similarity, 0.0, 0, 0), 1.0);
        assert_eq!(relatedness(RelatednessMetric::Similarity, 0.0, 0, 3), 0.0);
        assert_eq!(relatedness(RelatednessMetric::Containment, 0.0, 0, 3), 0.0);
    }

    #[test]
    fn size_check_similarity_window() {
        // δ = 0.7, |R| = 10: |S| must lie in [7, ⌈10/0.7⌉≈14.28].
        assert!(!size_check(RelatednessMetric::Similarity, 0.7, 10, 6));
        assert!(size_check(RelatednessMetric::Similarity, 0.7, 10, 7));
        assert!(size_check(RelatednessMetric::Similarity, 0.7, 10, 14));
        assert!(!size_check(RelatednessMetric::Similarity, 0.7, 10, 15));
    }

    #[test]
    fn size_check_containment_one_sided() {
        assert!(!size_check(RelatednessMetric::Containment, 0.7, 10, 6));
        assert!(size_check(RelatednessMetric::Containment, 0.7, 10, 7));
        assert!(size_check(RelatednessMetric::Containment, 0.7, 10, 1000));
    }

    #[test]
    fn size_check_never_excludes_related_pairs() {
        // Whenever the pair is actually related, the size check passes.
        let (c, r) = table2();
        let phi = Phi::new(SimilarityFunction::Jaccard, 0.0);
        let mut cost = VerifyCost::default();
        for metric in [
            RelatednessMetric::Similarity,
            RelatednessMetric::Containment,
        ] {
            for sid in 0..4 {
                let s = c.set(sid);
                let m = matching_score(&r, s, &phi, false, &mut cost);
                let rel = relatedness(metric, m, r.len(), s.len());
                if rel >= 0.7 {
                    assert!(size_check(metric, 0.7, r.len(), s.len()));
                }
            }
        }
    }
}
