//! Signature generation (§4, §6, §7).
//!
//! A *valid signature* for a reference set `R` is a token subset `K ⊆ R^T`
//! such that any related `S` must share a token with `K` (Definition 4).
//! Theorem 1 characterizes the valid signatures as exactly those whose
//! unflattened form satisfies `Σ (|ri|−|ki|)/|ri| < θ` (Jaccard) or
//! `Σ |ri|/(|ri|+|ki|) < θ` (edit similarity, Definition 11), with
//! `θ = δ|R|`. Optimal selection is NP-complete (Theorem 2), so SilkMoth
//! uses cost/value greedy heuristics (§4.3), extended by the sim-thresh /
//! skyline / dichotomy schemes when a similarity threshold α is available
//! (§6).
//!
//! ## Saturation
//!
//! With α > 0, an element `r` is *saturated* once its signature holds at
//! least `cap(r)` units — `⌊(1−α)|r|⌋+1` tokens for Jaccard (§6.1) or
//! `⌊(1−α)/α·|r|⌋+1` q-chunk occurrences for edit similarity (§7.2; the
//! paper's prose omits the `+1`, but its own derivation requires the
//! mismatch count to strictly exceed `⌊(1−α)/α·|r|⌋`). Any element of `S`
//! missing all of a saturated element's signature tokens has similarity
//! below α, hence `φ_α = 0`: saturated elements stop contributing to the
//! validity sum entirely, which is what makes the dichotomy scheme's
//! signatures so small.
//!
//! ## Degenerate signatures
//!
//! For edit similarity the weighted scheme can be empty (§7.3, when
//! `q ≥ δ/(1−δ)` and α gives no saturation help): even selecting every
//! q-chunk leaves the validity sum at or above θ. The generator then
//! returns a *degenerate* signature and the engine must treat every set as
//! a candidate (the paper: "SILKMOTH cannot generate any valid signature
//! but only compare R with every set").

use crate::config::SignatureScheme;
use silkmoth_collection::{Element, InvertedIndex, SetRecord};
use silkmoth_text::TokenId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Slack used for the strict `Σ < θ` validity comparison; generation only
/// stops once the sum is below `θ − VALIDITY_EPS`, so float noise can only
/// enlarge signatures (which preserves validity), never shrink them.
const VALIDITY_EPS: f64 = 1e-9;

/// Per-element signature `l_i` plus the bounds the filters need.
#[derive(Debug, Clone, PartialEq)]
pub struct SigElem {
    /// Signature tokens of this element, sorted ascending.
    pub tokens: Vec<TokenId>,
    /// Selected units: token count for Jaccard, q-chunk occurrences for
    /// edit similarity (one token may cover several chunk positions).
    pub units: usize,
    /// Upper bound on the raw similarity `φ(r, s)` for any `s` sharing no
    /// token with `tokens`: `(|r|−units)/|r|` for Jaccard,
    /// `|r|/(|r|+units)` for edit similarity. `1.0` for empty elements.
    pub raw_bound: f64,
    /// True when the element is covered by the sim-thresh side: missing
    /// all signature tokens then forces `φ_α = 0`.
    pub saturated: bool,
}

impl SigElem {
    /// This element's contribution to the validity sum: 0 when saturated,
    /// otherwise [`raw_bound`](Self::raw_bound).
    #[inline]
    pub fn validity_contribution(&self) -> f64 {
        if self.saturated {
            0.0
        } else {
            self.raw_bound
        }
    }
}

/// A generated signature for one reference set.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    /// Per-element signature token lists (`L_R` unflattened).
    pub elems: Vec<SigElem>,
    /// No valid signature exists: every set in the collection must be
    /// treated as a candidate.
    pub degenerate: bool,
    /// `Σ validity_contribution` over all elements.
    pub sum_bound: f64,
    /// Whether the check filter may *prune* candidates: requires
    /// `sum_bound < θ` (always true for signatures produced by the
    /// weighted-style schemes; can fail for unweighted edit signatures,
    /// whose validity argument is different — pruning is then disabled and
    /// the check filter only primes the nearest-neighbor reuse cache).
    pub check_prunable: bool,
}

impl Signature {
    /// Flattened signature `L^T` — the distinct tokens across elements.
    pub fn flat_tokens(&self) -> Vec<TokenId> {
        let mut v: Vec<TokenId> = self
            .elems
            .iter()
            .flat_map(|e| e.tokens.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total inverted-list cost `Σ_{t∈L^T} |I[t]|` (Problem 3's objective).
    pub fn cost(&self, index: &InvertedIndex) -> usize {
        self.flat_tokens().iter().map(|&t| index.cost(t)).sum()
    }
}

/// Which bound family the signature formulas use, derived from the
/// similarity function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigKind {
    /// Jaccard: `bound = (|r|−u)/|r|`, cap `⌊(1−α)|r|⌋+1`.
    Jaccard,
    /// Dice: `bound = 2(|r|−u)/(2|r|−u)`, cap `⌊2(1−α)/(2−α)·|r|⌋+1`.
    Dice,
    /// Cosine: `bound = √((|r|−u)/|r|)`, cap `⌊(1−α²)|r|⌋+1`.
    Cosine,
    /// Edit similarity: `bound = |r|/(|r|+u)` over q-chunk units, cap
    /// `⌊(1−α)/α·|r|⌋+1` (§7).
    Edit,
}

impl SigKind {
    /// Derives the bound family from the run's similarity function.
    pub fn of(func: silkmoth_text::SimilarityFunction) -> Self {
        use silkmoth_text::SimilarityFunction as F;
        match func {
            F::Jaccard => Self::Jaccard,
            F::Dice => Self::Dice,
            F::Cosine => Self::Cosine,
            F::Eds { .. } | F::NEds { .. } => Self::Edit,
        }
    }

    /// True for the q-chunk (edit similarity) family.
    pub fn is_edit(&self) -> bool {
        matches!(self, Self::Edit)
    }
}

/// Inputs shared by all schemes.
#[derive(Debug, Clone, Copy)]
pub struct SigParams {
    /// Maximum matching threshold θ = δ|R| (§4.2).
    pub theta: f64,
    /// Similarity threshold α.
    pub alpha: f64,
    /// Bound family (token-based variants vs q-chunk edit similarity).
    pub kind: SigKind,
}

/// Generates a signature for `r` under the given scheme.
pub fn generate(
    r: &SetRecord,
    scheme: SignatureScheme,
    params: SigParams,
    index: &InvertedIndex,
) -> Signature {
    let mut state = State::new(r, params, index);
    match scheme {
        SignatureScheme::Weighted => state.greedy(false),
        SignatureScheme::Dichotomy => state.greedy(true),
        SignatureScheme::Skyline => {
            state.greedy(false);
            state.trim_to_cap();
        }
        SignatureScheme::Unweighted => state.unweighted(),
        SignatureScheme::CombinedUnweighted => {
            state.unweighted();
            state.trim_to_cap();
        }
    }
    state.finish()
}

/// The sim-thresh unit cap for one element (§6.1 for Jaccard, §7.2 for
/// edit similarity; Dice and cosine derived the same way — solve
/// `bound(|r| − m) < α` for the minimum integer `m`), or `None` when
/// α = 0 or the element cannot be covered (pool smaller than the cap, or
/// an empty element).
pub fn sim_thresh_cap(size: usize, pool_units: usize, alpha: f64, kind: SigKind) -> Option<usize> {
    if alpha <= 0.0 || size == 0 {
        return None;
    }
    // +1e-9 so that a mathematically-integral product is not floored one
    // short (which would under-size `m_i` and break validity); overshoot
    // only ever raises the cap, which is conservative.
    let raw = match kind {
        SigKind::Jaccard => (1.0 - alpha) * size as f64,
        // Dice ≥ α needs |x∩y| ≥ α|r|/(2−α): miss more than
        // 2(1−α)/(2−α)·|r| tokens and the score drops below α.
        SigKind::Dice => 2.0 * (1.0 - alpha) / (2.0 - alpha) * size as f64,
        // Cosine ≥ α needs |x∩y| ≥ α²|r|.
        SigKind::Cosine => (1.0 - alpha * alpha) * size as f64,
        SigKind::Edit => (1.0 - alpha) / alpha * size as f64,
    };
    let cap = (raw + 1e-9).floor() as usize + 1;
    (cap <= pool_units).then_some(cap)
}

/// Per-element state during generation.
struct ElemState {
    /// `|r|`: distinct tokens (Jaccard) or characters (edit).
    size: usize,
    /// Selectable units grouped by token: `(token, multiplicity)`.
    pool: Vec<(TokenId, u32)>,
    /// Tokens selected so far.
    selected: Vec<TokenId>,
    /// Units selected so far.
    units: usize,
    /// Saturation threshold in units, if the element is saturable.
    cap: Option<usize>,
    saturated: bool,
    kind: SigKind,
}

impl ElemState {
    fn new(e: &Element, params: SigParams) -> Self {
        let size = e.size(params.kind.is_edit());
        let pool: Vec<(TokenId, u32)> = if params.kind.is_edit() {
            let mut chunks: Vec<TokenId> = e.chunks.to_vec();
            chunks.sort_unstable();
            let mut grouped = Vec::new();
            let mut i = 0;
            while i < chunks.len() {
                let t = chunks[i];
                let mut m = 0u32;
                while i < chunks.len() && chunks[i] == t {
                    m += 1;
                    i += 1;
                }
                grouped.push((t, m));
            }
            grouped
        } else {
            e.tokens.iter().map(|&t| (t, 1)).collect()
        };
        let pool_units: usize = pool.iter().map(|&(_, m)| m as usize).sum();
        let cap = sim_thresh_cap(size, pool_units, params.alpha, params.kind);
        Self {
            size,
            pool,
            selected: Vec::new(),
            units: 0,
            cap,
            saturated: false,
            kind: params.kind,
        }
    }

    /// `raw_bound` at a given unit count: the maximum `φ(r, s)` over
    /// elements `s` sharing none of the selected units.
    fn bound_at(&self, units: usize) -> f64 {
        if self.size == 0 {
            return 1.0;
        }
        let r = self.size as f64;
        match self.kind {
            SigKind::Jaccard => {
                debug_assert!(units <= self.size);
                (r - units as f64) / r
            }
            // |x∩y| ≤ |r|−u and Dice = 2c/(|x|+|y|) is maximized at the
            // smallest |y| = c: 2(|r|−u) / (|r| + (|r|−u)).
            SigKind::Dice => {
                debug_assert!(units <= self.size);
                let c = r - units as f64;
                2.0 * c / (r + c)
            }
            // Cosine = c/√(|x||y|) ≤ c/√(|r|·c) = √(c/|r|).
            SigKind::Cosine => {
                debug_assert!(units <= self.size);
                ((r - units as f64) / r).sqrt()
            }
            SigKind::Edit => r / (r + units as f64),
        }
    }

    fn contribution(&self) -> f64 {
        if self.saturated {
            0.0
        } else {
            self.bound_at(self.units)
        }
    }

    /// Decrease of the validity sum if `mult` more units were selected,
    /// honoring saturation when `dichotomy` is set.
    fn marginal(&self, mult: u32, dichotomy: bool) -> f64 {
        if self.saturated {
            return 0.0;
        }
        let next = self.units + mult as usize;
        if dichotomy {
            if let Some(cap) = self.cap {
                if next >= cap {
                    // Crossing the cap zeroes the whole contribution.
                    return self.bound_at(self.units);
                }
            }
        }
        self.bound_at(self.units) - self.bound_at(next)
    }

    /// Applies a selection of token `t` with multiplicity `mult`.
    fn select(&mut self, t: TokenId, mult: u32, dichotomy: bool) {
        debug_assert!(!self.saturated);
        self.selected.push(t);
        self.units += mult as usize;
        if dichotomy {
            if let Some(cap) = self.cap {
                if self.units >= cap {
                    self.saturated = true;
                }
            }
        }
    }
}

/// Min-heap entry ordered by (ratio asc, cost asc, token desc) — the
/// tie-break that reproduces Example 7's selection order.
struct HeapEntry {
    ratio: f64,
    cost: usize,
    token: TokenId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest ratio pops first.
        other
            .ratio
            .total_cmp(&self.ratio)
            .then_with(|| other.cost.cmp(&self.cost))
            .then_with(|| self.token.cmp(&other.token))
    }
}

struct State<'a> {
    elems: Vec<ElemState>,
    /// token → list of (element index, multiplicity).
    occurrences: Vec<(TokenId, Vec<(usize, u32)>)>,
    params: SigParams,
    index: &'a InvertedIndex,
    sum: f64,
    degenerate: bool,
}

impl<'a> State<'a> {
    fn new(r: &SetRecord, params: SigParams, index: &'a InvertedIndex) -> Self {
        let elems: Vec<ElemState> = r
            .elements
            .iter()
            .map(|e| ElemState::new(e, params))
            .collect();
        // Group occurrences by token.
        let mut occ: Vec<(TokenId, usize, u32)> = Vec::new();
        for (i, es) in elems.iter().enumerate() {
            for &(t, m) in &es.pool {
                occ.push((t, i, m));
            }
        }
        occ.sort_unstable();
        let mut occurrences: Vec<(TokenId, Vec<(usize, u32)>)> = Vec::new();
        for (t, i, m) in occ {
            match occurrences.last_mut() {
                Some((last, v)) if *last == t => v.push((i, m)),
                _ => occurrences.push((t, vec![(i, m)])),
            }
        }
        let sum = elems.iter().map(ElemState::contribution).sum();
        Self {
            elems,
            occurrences,
            params,
            index,
            sum,
            degenerate: false,
        }
    }

    fn value_of(&self, occ: &[(usize, u32)], dichotomy: bool) -> f64 {
        occ.iter()
            .map(|&(i, m)| self.elems[i].marginal(m, dichotomy))
            .sum()
    }

    /// Cost/value greedy (§4.3), with dichotomy saturation when requested
    /// (§6.4). Lazy-greedy: entries are re-pushed when their cached ratio
    /// went stale (edit-similarity marginals shrink as units accumulate;
    /// dichotomy zeroes marginals of saturated elements).
    fn greedy(&mut self, dichotomy: bool) {
        let theta = self.params.theta;
        if self.sum < theta - VALIDITY_EPS {
            return; // trivially valid with the empty signature
        }
        let mut heap = BinaryHeap::with_capacity(self.occurrences.len());
        for (pos, (t, occ)) in self.occurrences.iter().enumerate() {
            let value = self.value_of(occ, dichotomy);
            if value > 0.0 {
                let cost = self.index.cost(*t);
                heap.push((
                    HeapEntry {
                        ratio: cost as f64 / value,
                        cost,
                        token: *t,
                    },
                    pos,
                ));
            }
        }
        while self.sum >= theta - VALIDITY_EPS {
            let Some((entry, pos)) = heap.pop() else {
                // Pool exhausted with the sum still at/above θ: no valid
                // signature exists (§7.3).
                self.degenerate = true;
                return;
            };
            let (t, ref occ) = self.occurrences[pos];
            debug_assert_eq!(t, entry.token);
            let value = self.value_of(occ, dichotomy);
            if value <= 0.0 {
                continue; // all containing elements saturated; selecting is pointless
            }
            let fresh = entry.cost as f64 / value;
            if fresh > entry.ratio + 1e-15 {
                // Stale: re-insert with the updated priority.
                heap.push((
                    HeapEntry {
                        ratio: fresh,
                        cost: entry.cost,
                        token: t,
                    },
                    pos,
                ));
                continue;
            }
            for &(i, m) in occ {
                let es = &mut self.elems[i];
                if !es.saturated {
                    self.sum -= es.marginal(m, dichotomy);
                    es.select(t, m, dichotomy);
                }
            }
        }
    }

    /// The unweighted scheme (§4.2): remove the `c − 1` most expensive
    /// unit occurrences (largest `|I[t]|`), keep the rest.
    fn unweighted(&mut self) {
        let theta = self.params.theta;
        // Empty elements can score 1.0 against an empty element of S
        // without sharing any token, so they weaken the pigeonhole count.
        let empties = self.elems.iter().filter(|e| e.size == 0).count();
        let c = (theta - empties as f64).ceil().max(0.0) as usize;
        if c == 0 {
            // θ achievable through empty elements alone: no token-sharing
            // argument is possible.
            self.degenerate = true;
            return;
        }
        // All unit occurrences, most expensive first; remove the first c−1.
        let mut units: Vec<(usize, TokenId, usize)> = Vec::new(); // (cost, token, elem)
        for (i, es) in self.elems.iter().enumerate() {
            for &(t, m) in &es.pool {
                let cost = self.index.cost(t);
                for _ in 0..m {
                    units.push((cost, t, i));
                }
            }
        }
        units.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        if units.len() < c {
            // Fewer shared-token opportunities than θ requires: no set can
            // be related, and the empty signature (no candidates) is valid.
            for es in &mut self.elems {
                self.sum -= es.contribution();
                // Everything "removed": contribution is the full bound.
                self.sum += es.bound_at(0);
            }
            self.recompute_sum();
            return;
        }
        let removed = &units[..c - 1];
        // Count removals per (elem, token).
        let mut removed_counts: std::collections::HashMap<(usize, TokenId), u32> =
            std::collections::HashMap::new();
        for &(_, t, i) in removed {
            *removed_counts.entry((i, t)).or_insert(0) += 1;
        }
        for (i, es) in self.elems.iter_mut().enumerate() {
            for &(t, m) in &es.pool.clone() {
                let rm = removed_counts.get(&(i, t)).copied().unwrap_or(0);
                let keep = m - rm;
                if keep > 0 {
                    es.selected.push(t);
                    es.units += keep as usize;
                }
            }
        }
        self.recompute_sum();
    }

    /// Per-element trim to the sim-thresh cap (skyline §6.3 /
    /// combined-unweighted §6.2): elements whose selection reached the cap
    /// keep only their `cap` cheapest units and become saturated.
    fn trim_to_cap(&mut self) {
        for es in &mut self.elems {
            let Some(cap) = es.cap else { continue };
            if es.saturated || es.units < cap {
                continue;
            }
            // Keep the cap cheapest units (minimum |I[t]|, then smallest id
            // for determinism).
            let mut toks: Vec<(usize, TokenId)> = es
                .selected
                .iter()
                .map(|&t| (self.index.cost(t), t))
                .collect();
            toks.sort_unstable();
            let mut kept = Vec::new();
            let mut kept_units = 0usize;
            for (_, t) in toks {
                if kept_units >= cap {
                    break;
                }
                let mult = es
                    .pool
                    .iter()
                    .find(|&&(pt, _)| pt == t)
                    .map(|&(_, m)| m as usize)
                    .unwrap_or(1);
                kept.push(t);
                kept_units += mult;
            }
            es.selected = kept;
            es.units = kept_units;
            es.saturated = true;
        }
        self.recompute_sum();
    }

    fn recompute_sum(&mut self) {
        self.sum = self.elems.iter().map(ElemState::contribution).sum();
    }

    fn finish(mut self) -> Signature {
        self.recompute_sum();
        let theta = self.params.theta;
        if self.degenerate {
            return Signature {
                elems: self
                    .elems
                    .iter()
                    .map(|es| SigElem {
                        tokens: Vec::new(),
                        units: 0,
                        raw_bound: es.bound_at(0),
                        saturated: false,
                    })
                    .collect(),
                degenerate: true,
                sum_bound: self.elems.iter().map(|es| es.bound_at(0)).sum(),
                check_prunable: false,
            };
        }
        let elems: Vec<SigElem> = self
            .elems
            .into_iter()
            .map(|mut es| {
                es.selected.sort_unstable();
                es.selected.dedup();
                SigElem {
                    raw_bound: es.bound_at(es.units),
                    units: es.units,
                    saturated: es.saturated,
                    tokens: es.selected,
                }
            })
            .collect();
        let sum_bound: f64 = elems.iter().map(SigElem::validity_contribution).sum();
        Signature {
            check_prunable: sum_bound < theta - VALIDITY_EPS,
            sum_bound,
            elems,
            degenerate: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silkmoth_collection::paper_example::{table2, tid};
    use silkmoth_collection::InvertedIndex;

    fn sig(scheme: SignatureScheme, theta: f64, alpha: f64) -> (Signature, InvertedIndex) {
        let (c, r) = table2();
        let index = InvertedIndex::build(&c);
        let params = SigParams {
            theta,
            alpha,
            kind: SigKind::Jaccard,
        };
        (generate(&r, scheme, params, &index), index)
    }

    #[test]
    fn example7_weighted_greedy() {
        // δ = 0.7, θ = 2.1 → K^T = {t8, t9, t10, t11, t12}.
        let (s, _) = sig(SignatureScheme::Weighted, 2.1, 0.0);
        assert!(!s.degenerate);
        let flat = s.flat_tokens();
        assert_eq!(flat, vec![tid(8), tid(9), tid(10), tid(11), tid(12)]);
        // Unflattened: k1 = {t8}, k2 = {t9, t10}, k3 = {t11, t12} (Example 6).
        assert_eq!(s.elems[0].tokens, vec![tid(8)]);
        assert_eq!(s.elems[1].tokens, vec![tid(9), tid(10)]);
        assert_eq!(s.elems[2].tokens, vec![tid(11), tid(12)]);
        // Σ (|ri|−|ki|)/|ri| = 4/5 + 3/5 + 3/5 = 2.0 < θ.
        assert!((s.sum_bound - 2.0).abs() < 1e-12);
        assert!(s.check_prunable);
    }

    #[test]
    fn example13_dichotomy() {
        // α = δ = 0.7 → L^T = {t11, t12}, r3 saturated.
        let (s, _) = sig(SignatureScheme::Dichotomy, 2.1, 0.7);
        assert!(!s.degenerate);
        assert_eq!(s.flat_tokens(), vec![tid(11), tid(12)]);
        assert!(s.elems[0].tokens.is_empty());
        assert!(s.elems[1].tokens.is_empty());
        assert_eq!(s.elems[2].tokens, vec![tid(11), tid(12)]);
        assert!(s.elems[2].saturated);
        // Σ = 1 + 1 + 0 = 2.0 < 2.1.
        assert!((s.sum_bound - 2.0).abs() < 1e-12);
    }

    #[test]
    fn example12_skyline_equals_weighted() {
        // α = δ = 0.7: skyline trims nothing (|ki| ≤ cap = 2) and L^T = K^T.
        let (s, _) = sig(SignatureScheme::Skyline, 2.1, 0.7);
        assert_eq!(
            s.flat_tokens(),
            vec![tid(8), tid(9), tid(10), tid(11), tid(12)]
        );
        // k2 = {t9, t10} hits the cap exactly → saturated; k1 = {t8} is not.
        assert!(!s.elems[0].saturated);
        assert!(s.elems[1].saturated);
        assert!(s.elems[2].saturated);
    }

    #[test]
    fn skyline_reduces_to_weighted_when_alpha_zero() {
        let (a, _) = sig(SignatureScheme::Skyline, 2.1, 0.0);
        let (b, _) = sig(SignatureScheme::Weighted, 2.1, 0.0);
        assert_eq!(a.flat_tokens(), b.flat_tokens());
        assert!(a.elems.iter().all(|e| !e.saturated));
    }

    #[test]
    fn dichotomy_reduces_to_weighted_when_alpha_zero() {
        let (a, _) = sig(SignatureScheme::Dichotomy, 2.1, 0.0);
        let (b, _) = sig(SignatureScheme::Weighted, 2.1, 0.0);
        assert_eq!(a.flat_tokens(), b.flat_tokens());
    }

    #[test]
    fn unweighted_keeps_all_but_c_minus_one() {
        // Example 5: c = ⌈2.1⌉ = 3, remove 2 occurrences. The most
        // expensive occurrences are the two t1's (cost 9).
        let (s, _) = sig(SignatureScheme::Unweighted, 2.1, 0.0);
        let flat = s.flat_tokens();
        // t1 appears in r1 and r3 (two occurrences): both removed, so t1
        // is gone; everything else stays.
        assert!(!flat.contains(&tid(1)));
        for i in 2..=12 {
            assert!(flat.contains(&tid(i)), "t{i} should remain");
        }
        assert!(s.check_prunable); // Σ = 1/5 + 1/5 < θ
        assert!((s.sum_bound - 0.4).abs() < 1e-12);
    }

    #[test]
    fn unweighted_signature_is_larger_than_weighted() {
        let (u, idx) = sig(SignatureScheme::Unweighted, 2.1, 0.0);
        let (w, _) = sig(SignatureScheme::Weighted, 2.1, 0.0);
        assert!(u.cost(&idx) > w.cost(&idx));
    }

    #[test]
    fn combined_unweighted_trims_to_cap() {
        let (s, _) = sig(SignatureScheme::CombinedUnweighted, 2.1, 0.7);
        // cap = 2 per element; every element ends with ≤ 2 tokens... in
        // units terms each li has exactly cap units (trimmed) since the
        // unweighted ki kept ≥ 3 tokens per element.
        for e in &s.elems {
            assert!(e.units <= 2);
            assert!(e.saturated);
        }
        // And the signature is strictly cheaper than plain unweighted.
        let (u, idx) = sig(SignatureScheme::Unweighted, 2.1, 0.7);
        assert!(s.cost(&idx) < u.cost(&idx));
    }

    #[test]
    fn higher_theta_smaller_signature() {
        let (lo, idx) = sig(SignatureScheme::Weighted, 0.7 * 3.0, 0.0);
        let (hi, _) = sig(SignatureScheme::Weighted, 0.85 * 3.0, 0.0);
        assert!(hi.cost(&idx) <= lo.cost(&idx));
    }

    #[test]
    fn all_validity_sums_below_theta() {
        for scheme in [
            SignatureScheme::Weighted,
            SignatureScheme::Skyline,
            SignatureScheme::Dichotomy,
            SignatureScheme::Unweighted,
            SignatureScheme::CombinedUnweighted,
        ] {
            for alpha in [0.5, 0.7] {
                let (s, _) = sig(scheme, 2.1, alpha);
                assert!(!s.degenerate);
                assert!(
                    s.sum_bound < 2.1,
                    "{scheme:?} α={alpha}: Σ = {}",
                    s.sum_bound
                );
            }
        }
    }

    #[test]
    fn sim_thresh_cap_values() {
        // Example 10: α = 0.7, |ri| = 5 → ⌊0.3·5⌋ + 1 = 2.
        assert_eq!(sim_thresh_cap(5, 5, 0.7, SigKind::Jaccard), Some(2));
        // α = 0 → None.
        assert_eq!(sim_thresh_cap(5, 5, 0.0, SigKind::Jaccard), None);
        // Edit: α = 0.8, |r| = 10 → ⌊0.25·10⌋ + 1 = 3 chunk units.
        assert_eq!(sim_thresh_cap(10, 4, 0.8, SigKind::Edit), Some(3));
        // Unsaturable when the pool is smaller than the cap.
        assert_eq!(sim_thresh_cap(10, 2, 0.8, SigKind::Edit), None);
        // Empty element: never saturable.
        assert_eq!(sim_thresh_cap(0, 0, 0.7, SigKind::Jaccard), None);
        // Exact integral product is not floored short: (1−0.75)·4 = 1.
        assert_eq!(sim_thresh_cap(4, 4, 0.75, SigKind::Jaccard), Some(2));
    }

    #[test]
    fn empty_reference_set_is_trivially_fine() {
        let (c, _) = table2();
        let index = InvertedIndex::build(&c);
        let r = c.encode_set(&Vec::<&str>::new());
        let s = generate(
            &r,
            SignatureScheme::Weighted,
            SigParams {
                theta: 0.0001,
                alpha: 0.0,
                kind: SigKind::Jaccard,
            },
            &index,
        );
        assert!(s.elems.is_empty());
    }

    #[test]
    fn unknown_tokens_are_free_and_selected_first() {
        // A reference set full of out-of-dictionary tokens: its signature
        // costs 0 and admits no candidates — which is correct, as no set
        // can be related to it.
        let (c, _) = table2();
        let index = InvertedIndex::build(&c);
        let r = c.encode_set(&["zz1 zz2 zz3", "zz4 zz5 zz6"]);
        let s = generate(
            &r,
            SignatureScheme::Weighted,
            SigParams {
                theta: 0.7 * 2.0,
                alpha: 0.0,
                kind: SigKind::Jaccard,
            },
            &index,
        );
        assert!(!s.degenerate);
        assert_eq!(s.cost(&index), 0);
        assert!(!s.flat_tokens().is_empty());
    }
}
