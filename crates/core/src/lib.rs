//! # silkmoth-core
//!
//! The SilkMoth engine (Deng, Kim, Madden, Stonebraker — VLDB 2017):
//! exact discovery and search of *related sets* under maximum-matching
//! relatedness metrics.
//!
//! ## What it does
//!
//! Two sets of string elements are related when the score of the maximum
//! weighted bipartite matching between their elements — each edge weighted
//! by an element similarity φ (Jaccard or edit similarity), optionally
//! clamped below a threshold α — clears a relatedness threshold δ under
//! either [`RelatednessMetric::Similarity`] or
//! [`RelatednessMetric::Containment`].
//!
//! Verifying one pair costs `O(n³)`; comparing all pairs is hopeless.
//! SilkMoth prunes with:
//!
//! 1. **Valid signatures** (§4): a token subset of the reference such that
//!    any related set must share a token with it. The full space of valid
//!    signatures is the weighted scheme (Theorem 1), optimal selection is
//!    NP-complete (Theorem 2), and the engine offers five heuristic
//!    schemes ([`SignatureScheme`]).
//! 2. **Check filter** (§5.1): verifies that matched elements actually
//!    beat their signature-derived similarity bounds.
//! 3. **Nearest-neighbor filter** (§5.2): upper-bounds the matching score
//!    by each reference element's nearest neighbor, with computation reuse
//!    and early termination.
//! 4. **Reduction-based verification** (§5.3): identical elements are
//!    matched up front (valid whenever `1 − φ` obeys the triangle
//!    inequality, i.e. α = 0), shrinking the Hungarian instance.
//!
//! The output is **exactly** the brute-force result — no false negatives,
//! ever. The [`brute`] module provides the reference implementation the
//! test suite holds the engine to.
//!
//! ## Quick start
//!
//! The engine owns its collection behind an `Arc` — no lifetimes, and it
//! is `Send + Sync`, so it slots directly into server state:
//!
//! ```
//! use silkmoth_core::{Engine, RelatednessMetric};
//! use silkmoth_collection::{Collection, Tokenization};
//! use silkmoth_text::SimilarityFunction;
//!
//! // A tiny corpus: each set is a list of string elements.
//! let corpus = vec![
//!     vec!["77 Mass Ave Boston MA", "5th St 02115 Seattle WA"],
//!     vec!["77 Massachusetts Avenue Boston MA", "Fifth Street Seattle WA 02115"],
//! ];
//! let collection = Collection::build(&corpus, Tokenization::Whitespace);
//! let engine = Engine::builder(collection)
//!     .metric(RelatednessMetric::Similarity)
//!     .phi(SimilarityFunction::Jaccard)
//!     .delta(0.25) // relatedness threshold δ
//!     .alpha(0.0)  // similarity threshold α
//!     .build()
//!     .unwrap();
//! let related = engine.discover_self();
//! assert_eq!(related.pairs.len(), 1);
//!
//! // Parameterized per-query searches, including streaming:
//! let r = engine.collection().set(0).clone();
//! let top = engine.query(&r).floor(0.2).top_k(1).run().unwrap();
//! assert_eq!(top.results.len(), 1);
//! ```

pub mod brute;
mod builder;
mod config;
mod engine;
pub mod explain;
mod filter;
mod optimal;
mod phi;
mod policy;
mod query;
pub mod rank;
pub mod signature;
mod spec;
mod verify;
pub mod wire;

pub use builder::EngineBuilder;
pub use config::{
    ConfigError, EngineConfig, FilterKind, RelatednessMetric, SignatureScheme, FILTER_EPS,
    VERIFY_EPS,
};
pub use engine::{DiscoveryOutput, Engine, RelatedPair, SearchOutput, Update, UpdateOutcome};
pub use explain::{explain_pair, ElementExplanation, PairExplanation};
pub use filter::{PassStats, Restriction, Searcher};
pub use optimal::optimal_signature;
pub use phi::{IdentityKey, Phi};
pub use policy::CompactionPolicy;
pub use query::{Query, QueryIter};
pub use signature::{generate as generate_signature, SigElem, SigKind, SigParams, Signature};
pub use silkmoth_collection::UpdateError;
pub use spec::{PhaseTiming, QueryOutput, QuerySpec};
pub use verify::{matching_score, relatedness, size_check, verify_pair, VerifyCost};
