//! Parameterized, streamable searches over an [`Engine`].
//!
//! [`Query`] is the fluent, borrowed front end; since the QuerySpec
//! migration it is a thin wrapper that **compiles down to a
//! [`QuerySpec`]** — [`run`](Query::run) and [`iter`](Query::iter) both
//! build one (which is where the floor is validated, in exactly one
//! place) and execute through the same machinery as
//! [`Engine::execute`](crate::Engine::execute).

use std::time::{Duration, Instant};

use crate::config::ConfigError;
use crate::engine::{Engine, SearchOutput};
use crate::filter::{PassStats, Searcher, StagedPass};
use crate::phi::Phi;
use crate::spec::QuerySpec;
use crate::verify::{verify_pair, VerifyCost};
use silkmoth_collection::{SetIdx, SetRecord};

/// How many candidates [`Query::iter`] runs through the filters at a
/// time. Small enough that a caller stopping at the first hit rarely pays
/// for filtering more than one chunk; large enough to amortize the
/// per-chunk bookkeeping.
const ITER_CHUNK: usize = 64;

/// A parameterized RELATED SET SEARCH, created by [`Engine::query`].
///
/// By default [`run`](Self::run) behaves exactly like
/// [`Engine::search`]: all sets related to the reference at the engine's
/// δ, in ascending set-id order. Per-query overrides compose on top:
///
/// * [`floor`](Self::floor) replaces the relatedness threshold for this
///   query only (validated to lie in `[0, 1]` — out-of-range floors are a
///   [`ConfigError::FloorOutOfRange`], never silently clamped);
/// * [`top_k`](Self::top_k) ranks the results by score and keeps the `k`
///   best. Ties are broken deterministically: **score descending, then
///   set id ascending**.
/// * [`deadline`](Self::deadline) bounds the query's wall-clock budget;
///   see [`QuerySpec::with_deadline`].
///
/// [`iter`](Self::iter) streams `(set, score)` results as verification
/// proves them, for early termination; `top_k` does not apply there
/// (ranking needs the full result set).
///
/// Everything a `Query` can express, a [`QuerySpec`] can too — and the
/// spec is owned and serializable. `run()` literally builds one and
/// executes it, so the two paths cannot drift.
#[derive(Clone, Copy)]
pub struct Query<'e, 'r> {
    engine: &'e Engine,
    r: &'r SetRecord,
    k: Option<usize>,
    floor: Option<f64>,
    deadline: Option<Duration>,
}

impl<'e, 'r> Query<'e, 'r> {
    pub(crate) fn new(engine: &'e Engine, r: &'r SetRecord) -> Self {
        Self {
            engine,
            r,
            k: None,
            floor: None,
            deadline: None,
        }
    }

    /// Keep only the `k` most related sets, ranked by score descending
    /// with ties broken by ascending set id. Usually combined with
    /// [`floor`](Self::floor), since the engine's δ still decides which
    /// sets are admitted at all.
    pub fn top_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Overrides the relatedness threshold for this query: only sets with
    /// relatedness ≥ `floor` are returned, and the search pass prunes
    /// with δ = `floor` — the same exactness guarantee, down to the
    /// floor.
    ///
    /// `floor` must lie in `[0, 1]`; anything else makes
    /// [`run`](Self::run)/[`iter`](Self::iter) return
    /// [`ConfigError::FloorOutOfRange`] (the check happens in
    /// [`QuerySpec::with_floor`], the one validation point). A floor of
    /// exactly 0 admits every set — relatedness ≥ 0 always holds — so the
    /// pass degenerates to ranking the whole collection, which is exact
    /// but slow (the paper's footnote 2).
    pub fn floor(mut self, floor: f64) -> Self {
        self.floor = Some(floor);
        self
    }

    /// Gives the query a wall-clock budget. On expiry [`run`](Self::run)
    /// returns what was proven so far (its output cannot say so — use
    /// [`Engine::execute`](crate::Engine::execute) when the
    /// [`timed_out`](crate::QueryOutput::timed_out) flag matters) and
    /// [`iter`](Self::iter) stops yielding with
    /// [`QueryIter::timed_out`] set.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Compiles the builder state down to the owned [`QuerySpec`] it
    /// expresses — the reference's element texts plus the `top_k` /
    /// `floor` / `deadline` overrides. This is where the floor is
    /// validated.
    pub fn to_spec(&self) -> Result<QuerySpec, ConfigError> {
        let texts: Vec<String> = self.r.elements.iter().map(|e| e.text.to_string()).collect();
        self.knobs_spec(texts)
    }

    /// The spec carrying this builder's knobs over `reference` —
    /// [`run`](Self::run)/[`iter`](Self::iter) pass an empty reference
    /// because they execute over the already-encoded borrowed record
    /// (the execution core never re-reads the spec's texts), which
    /// keeps the hot path free of per-element string clones.
    fn knobs_spec(&self, reference: Vec<String>) -> Result<QuerySpec, ConfigError> {
        let mut spec = QuerySpec::new(reference);
        if let Some(k) = self.k {
            spec = spec.with_top_k(k);
        }
        if let Some(floor) = self.floor {
            spec = spec.with_floor(floor)?;
        }
        if let Some(budget) = self.deadline {
            spec = spec.with_deadline(budget);
        }
        Ok(spec)
    }

    /// Runs the full search pass and returns all results at once.
    ///
    /// Without [`top_k`](Self::top_k), results are in ascending set-id
    /// order; with it, score descending (ties by ascending id),
    /// truncated to `k`. Equivalent to
    /// `engine.execute(&self.to_spec()?)` — the spec path and this
    /// builder are the same code.
    pub fn run(&self) -> Result<SearchOutput, ConfigError> {
        let spec = self.knobs_spec(Vec::new())?;
        // The record is already encoded against this engine's
        // collection; skip the spec's re-encoding step.
        let out = self.engine.execute_encoded(&spec, self.r, None);
        Ok(SearchOutput {
            results: out.hits,
            stats: out.stats,
        })
    }

    /// Streams results as verification proves them, instead of waiting
    /// for the whole pass: candidate selection runs up front (it is
    /// index-bound and fast), then candidates are pushed through the
    /// check/nearest-neighbor filters in fixed-size chunks and each
    /// surviving candidate is verified lazily as the iterator is
    /// advanced. A caller that stops after the first hit pays for
    /// filtering at most one chunk beyond it and never for verifying the
    /// rest, which is where the `O(n³)` time goes.
    ///
    /// Yield order follows candidate order, not set id; collect and sort
    /// when order matters. A fully drained iterator yields exactly
    /// [`run`](Self::run)'s result set (chunking never changes which
    /// candidates survive). [`top_k`](Self::top_k) is ignored here;
    /// [`floor`](Self::floor) and [`deadline`](Self::deadline) apply.
    pub fn iter(&self) -> Result<QueryIter<'e, 'r>, ConfigError> {
        let spec = self.knobs_spec(Vec::new())?;
        let deadline = spec.deadline_at(None);
        Ok(QueryIter::stage(self.engine, self.r, &spec, deadline))
    }
}

/// Streaming query results: filtering happens chunk by chunk and
/// verification one surviving candidate at a time, both inside
/// [`Iterator::next`]. A deadline, when set, is checked cooperatively
/// before every chunk filter and every verification; on expiry the
/// iterator stops yielding and [`timed_out`](Self::timed_out) reports
/// it.
pub struct QueryIter<'e, 'r> {
    engine: &'e Engine,
    r: &'r SetRecord,
    cfg: crate::config::EngineConfig,
    phi: Phi,
    searcher: Searcher<'e>,
    pass: StagedPass,
    /// Survivors of the current chunk, not yet verified.
    chunk: std::vec::IntoIter<SetIdx>,
    verified: usize,
    results: usize,
    vcost: VerifyCost,
    /// Absolute expiry instant, when the query carries a budget.
    deadline: Option<Instant>,
    timed_out: bool,
}

impl std::fmt::Debug for QueryIter<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryIter")
            .field("remaining_candidates", &self.remaining_candidates())
            .field("timed_out", &self.timed_out)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<'e, 'r> QueryIter<'e, 'r> {
    /// Stages the pass a validated `spec` describes over an
    /// already-encoded record, expiring at the absolute `deadline`
    /// (compute it with [`QuerySpec::deadline_at`] *before* staging, so
    /// the budget covers staging, filtering, verification — and, in
    /// [`Engine::execute`](crate::Engine::execute), explanations).
    pub(crate) fn stage(
        engine: &'e Engine,
        r: &'r SetRecord,
        spec: &QuerySpec,
        deadline: Option<Instant>,
    ) -> Self {
        let cfg = spec.effective_cfg(engine.config());
        let mut searcher = Searcher::new(engine.collection(), engine.index(), cfg);
        let pass = searcher.stage(r, crate::filter::Restriction::default());
        QueryIter {
            engine,
            r,
            cfg,
            phi: Phi::new(cfg.similarity, cfg.alpha),
            searcher,
            pass,
            chunk: Vec::new().into_iter(),
            verified: 0,
            results: 0,
            vcost: VerifyCost::default(),
            deadline,
            timed_out: false,
        }
    }

    /// Pass counters as of now: candidate-selection counts are final,
    /// while the filter-stage counts (`after_check`/`after_nn`) and
    /// `verified`/`results`/`sim_evals` grow as the iterator advances.
    /// After exhaustion this equals the stats [`Query::run`] reports.
    pub fn stats(&self) -> PassStats {
        let mut stats = self.pass.stats;
        stats.verified += self.verified;
        stats.results += self.results;
        stats.sim_evals += self.vcost.sim_evals;
        stats.reduced_pairs += self.vcost.reduced_pairs;
        stats
    }

    /// How many candidates are still pending: unverified survivors of the
    /// current chunk plus candidates the filters have not seen yet.
    pub fn remaining_candidates(&self) -> usize {
        self.chunk.len() + self.pass.remaining()
    }

    /// True when the deadline expired before the pass finished; the
    /// iterator stops yielding at that point, so everything it produced
    /// is still correct — just not complete.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }

    /// Checks the deadline (called between units of work); returns true
    /// — and latches [`timed_out`](Self::timed_out) — on expiry.
    fn expired(&mut self) -> bool {
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.timed_out = true;
        }
        self.timed_out
    }
}

impl Iterator for QueryIter<'_, '_> {
    type Item = (SetIdx, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.timed_out {
            return None;
        }
        loop {
            while let Some(sid) = self.chunk.next() {
                // Verification is the O(n³) unit of work; check the
                // budget before each one.
                if self.expired() {
                    return None;
                }
                self.verified += 1;
                if let Some(score) = verify_pair(
                    self.r,
                    self.engine.collection().set(sid),
                    &self.cfg,
                    &self.phi,
                    &mut self.vcost,
                ) {
                    self.results += 1;
                    return Some((sid, score));
                }
            }
            if self.pass.remaining() == 0 {
                return None;
            }
            if self.expired() {
                return None;
            }
            self.chunk = self
                .searcher
                .filter_chunk(self.r, &mut self.pass, ITER_CHUNK)
                .into_iter();
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining_candidates()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConfigError, RelatednessMetric};
    use silkmoth_collection::paper_example::table2;
    use silkmoth_text::SimilarityFunction;

    fn engine(delta: f64) -> Engine {
        let (c, _) = table2();
        Engine::builder(c)
            .metric(RelatednessMetric::Containment)
            .phi(SimilarityFunction::Jaccard)
            .delta(delta)
            .build()
            .unwrap()
    }

    #[test]
    fn plain_query_equals_search() {
        let (_, r) = table2();
        let engine = engine(0.7);
        let q = engine.query(&r).run().unwrap();
        let s = engine.search(&r);
        assert_eq!(q.results, s.results);
        assert_eq!(q.stats, s.stats);
    }

    #[test]
    fn floor_out_of_range_is_an_error_not_a_clamp() {
        let (_, r) = table2();
        let engine = engine(0.7);
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = engine.query(&r).floor(bad).run().unwrap_err();
            assert!(matches!(err, ConfigError::FloorOutOfRange(_)), "{bad}");
            let err = engine.query(&r).floor(bad).iter().unwrap_err();
            assert!(matches!(err, ConfigError::FloorOutOfRange(_)), "{bad}");
        }
    }

    #[test]
    fn builder_compiles_to_the_equivalent_spec() {
        let (_, r) = table2();
        let engine = engine(0.7);
        let spec = engine
            .query(&r)
            .top_k(3)
            .floor(0.4)
            .deadline(Duration::from_secs(5))
            .to_spec()
            .unwrap();
        assert_eq!(spec.top_k(), Some(3));
        assert_eq!(spec.floor(), Some(0.4));
        assert_eq!(spec.deadline(), Some(Duration::from_secs(5)));
        let texts: Vec<String> = r.elements.iter().map(|e| e.text.to_string()).collect();
        assert_eq!(spec.reference(), &texts[..]);
    }

    #[test]
    fn top_k_ranks_by_score_then_id() {
        let (_, r) = table2();
        let engine = engine(0.7);
        let all = engine.query(&r).floor(0.0).run().unwrap();
        // Every set has some relatedness to R in Table 2, so floor 0
        // admits all four; ranked output must be sorted score desc.
        assert_eq!(all.results.len(), 4);
        let top2 = engine.query(&r).floor(0.0).top_k(2).run().unwrap();
        assert_eq!(top2.results.len(), 2);
        assert!(top2.results[0].1 >= top2.results[1].1);
        assert_eq!(top2.results[0].0, 3); // S4 is the most related
    }

    #[test]
    fn iter_drained_equals_run() {
        let (_, r) = table2();
        for delta in [0.3, 0.5, 0.7] {
            let engine = engine(delta);
            let run = engine.query(&r).run().unwrap();
            let mut iter = engine.query(&r).iter().unwrap();
            let mut streamed: Vec<(u32, f64)> = iter.by_ref().collect();
            streamed.sort_unstable_by_key(|&(sid, _)| sid);
            assert_eq!(streamed, run.results, "δ={delta}");
            assert_eq!(iter.stats(), run.stats, "δ={delta}");
            assert!(!iter.timed_out(), "δ={delta}");
        }
    }

    #[test]
    fn iter_chunked_filtering_equals_run_across_chunk_boundaries() {
        // A workload whose candidate set spans several ITER_CHUNK-sized
        // chunks (floor 0 admits every set), so the chunked filter path is
        // exercised across boundaries — results and drained stats must
        // still match run() exactly.
        let raw: Vec<Vec<String>> = (0..(3 * super::ITER_CHUNK + 17))
            .map(|i| {
                (0..3)
                    .map(|j| format!("w{} w{} shared{}", (i * 3 + j) % 11, (i + j) % 7, i % 5))
                    .collect()
            })
            .collect();
        let c = silkmoth_collection::Collection::build(
            &raw,
            silkmoth_collection::Tokenization::Whitespace,
        );
        let engine = Engine::builder(c)
            .metric(RelatednessMetric::Similarity)
            .phi(SimilarityFunction::Jaccard)
            .delta(0.6)
            .build()
            .unwrap();
        let r = engine.collection().set(0).clone();
        for floor in [0.0, 0.2, 0.6] {
            let run = engine.query(&r).floor(floor).run().unwrap();
            let mut iter = engine.query(&r).floor(floor).iter().unwrap();
            if floor == 0.0 {
                // Floor 0 admits every set, so this floor is guaranteed to
                // span multiple chunks.
                assert!(iter.remaining_candidates() > super::ITER_CHUNK);
            }
            let mut streamed: Vec<(u32, f64)> = iter.by_ref().collect();
            streamed.sort_unstable_by_key(|&(sid, _)| sid);
            assert_eq!(streamed, run.results, "floor={floor}");
            assert_eq!(iter.stats(), run.stats, "floor={floor}");
            assert_eq!(iter.remaining_candidates(), 0);
        }
    }

    #[test]
    fn iter_early_termination_skips_filtering_of_later_chunks() {
        // With floor 0 every set is a candidate and every verification
        // succeeds, so after one next() only the first chunk can have been
        // filtered: the NN filter's sim_evals for later chunks must not
        // have been spent yet.
        let raw: Vec<Vec<String>> = (0..(2 * super::ITER_CHUNK + 9))
            .map(|i| vec![format!("a{} b{}", i % 13, i % 3), format!("c{}", i % 4)])
            .collect();
        let c = silkmoth_collection::Collection::build(
            &raw,
            silkmoth_collection::Tokenization::Whitespace,
        );
        let engine = Engine::builder(c)
            .metric(RelatednessMetric::Similarity)
            .phi(SimilarityFunction::Jaccard)
            .delta(0.7)
            .build()
            .unwrap();
        let r = engine.collection().set(0).clone();
        let full = engine.query(&r).floor(0.0).run().unwrap();
        let mut iter = engine.query(&r).floor(0.0).iter().unwrap();
        iter.next().expect("floor 0 always yields");
        let partial = iter.stats();
        assert!(
            partial.after_nn < full.stats.after_nn,
            "later chunks must not have been filtered yet ({} vs {})",
            partial.after_nn,
            full.stats.after_nn
        );
        assert!(partial.verified < full.stats.verified);
        // Draining afterwards still converges to the run() stats.
        iter.by_ref().for_each(drop);
        assert_eq!(iter.stats(), full.stats);
    }

    #[test]
    fn iter_supports_early_termination() {
        let (_, r) = table2();
        let engine = engine(0.3);
        let run = engine.query(&r).run().unwrap();
        assert!(run.results.len() > 1, "need >1 result for this test");
        let mut iter = engine.query(&r).iter().unwrap();
        let first = iter.next().unwrap();
        // Only part of the verification work has happened.
        assert!(iter.stats().verified < run.stats.verified);
        assert!(run.results.contains(&first));
    }

    #[test]
    fn zero_deadline_stops_the_iterator_cooperatively() {
        let (_, r) = table2();
        let engine = engine(0.7);
        // Floor 0 guarantees candidates exist, so the pass has work to
        // abandon and the timeout is observable.
        let mut iter = engine
            .query(&r)
            .floor(0.0)
            .deadline(Duration::ZERO)
            .iter()
            .unwrap();
        assert!(iter.next().is_none());
        assert!(iter.timed_out());
        // The stats still describe exactly the work done (nothing
        // verified).
        assert_eq!(iter.stats().verified, 0);
        // Without a deadline the same query yields everything.
        let full = engine.query(&r).floor(0.0).run().unwrap();
        assert_eq!(full.results.len(), 4);
    }
}
