//! Parameterized, streamable searches over an [`Engine`].

use crate::config::{ConfigError, EngineConfig};
use crate::engine::{Engine, SearchOutput};
use crate::filter::{PassStats, Restriction, Searcher, StagedPass};
use crate::phi::Phi;
use crate::rank::rank_top_k;
use crate::verify::{verify_pair, VerifyCost};
use silkmoth_collection::{SetIdx, SetRecord};

/// How many candidates [`Query::iter`] runs through the filters at a
/// time. Small enough that a caller stopping at the first hit rarely pays
/// for filtering more than one chunk; large enough to amortize the
/// per-chunk bookkeeping.
const ITER_CHUNK: usize = 64;

/// A parameterized RELATED SET SEARCH, created by [`Engine::query`].
///
/// By default [`run`](Self::run) behaves exactly like
/// [`Engine::search`]: all sets related to the reference at the engine's
/// δ, in ascending set-id order. Two per-query overrides compose on top:
///
/// * [`floor`](Self::floor) replaces the relatedness threshold for this
///   query only (validated to lie in `[0, 1]` — out-of-range floors are a
///   [`ConfigError::FloorOutOfRange`], never silently clamped);
/// * [`top_k`](Self::top_k) ranks the results by score and keeps the `k`
///   best. Ties are broken deterministically: **score descending, then
///   set id ascending**.
///
/// [`iter`](Self::iter) streams `(set, score)` results as verification
/// proves them, for early termination; `top_k` does not apply there
/// (ranking needs the full result set).
#[derive(Clone, Copy)]
pub struct Query<'e, 'r> {
    engine: &'e Engine,
    r: &'r SetRecord,
    k: Option<usize>,
    floor: Option<f64>,
}

impl<'e, 'r> Query<'e, 'r> {
    pub(crate) fn new(engine: &'e Engine, r: &'r SetRecord) -> Self {
        Self {
            engine,
            r,
            k: None,
            floor: None,
        }
    }

    /// Keep only the `k` most related sets, ranked by score descending
    /// with ties broken by ascending set id. Usually combined with
    /// [`floor`](Self::floor), since the engine's δ still decides which
    /// sets are admitted at all.
    pub fn top_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Overrides the relatedness threshold for this query: only sets with
    /// relatedness ≥ `floor` are returned, and the search pass prunes
    /// with δ = `floor` — the same exactness guarantee, down to the
    /// floor.
    ///
    /// `floor` must lie in `[0, 1]`; anything else makes
    /// [`run`](Self::run)/[`iter`](Self::iter) return
    /// [`ConfigError::FloorOutOfRange`]. A floor of exactly 0 admits
    /// every set — relatedness ≥ 0 always holds — so the pass degenerates
    /// to ranking the whole collection, which is exact but slow (the
    /// paper's footnote 2).
    pub fn floor(mut self, floor: f64) -> Self {
        self.floor = Some(floor);
        self
    }

    /// The engine-level configuration with the query's floor applied.
    fn effective_cfg(&self) -> Result<EngineConfig, ConfigError> {
        let mut cfg = *self.engine.config();
        if let Some(floor) = self.floor {
            if !(0.0..=1.0).contains(&floor) {
                return Err(ConfigError::FloorOutOfRange(floor));
            }
            // A zero floor still needs a positive δ for the pass's
            // threshold arithmetic; MIN_POSITIVE is within VERIFY_EPS of
            // zero, so even relatedness-0 sets verify (floor 0 = rank
            // everything).
            cfg.delta = floor.max(f64::MIN_POSITIVE);
        }
        Ok(cfg)
    }

    /// Runs the full search pass and returns all results at once.
    ///
    /// Without [`top_k`](Self::top_k), results are in ascending set-id
    /// order; with it, score descending (ties by ascending id),
    /// truncated to `k`.
    pub fn run(&self) -> Result<SearchOutput, ConfigError> {
        let cfg = self.effective_cfg()?;
        let mut searcher = Searcher::new(self.engine.collection(), self.engine.index(), cfg);
        let (mut results, stats) = searcher.run(self.r, Restriction::default());
        if let Some(k) = self.k {
            rank_top_k(&mut results, k);
        }
        Ok(SearchOutput { results, stats })
    }

    /// Streams results as verification proves them, instead of waiting
    /// for the whole pass: candidate selection runs up front (it is
    /// index-bound and fast), then candidates are pushed through the
    /// check/nearest-neighbor filters in fixed-size chunks and each
    /// surviving candidate is verified lazily as the iterator is
    /// advanced. A caller that stops after the first hit pays for
    /// filtering at most one chunk beyond it and never for verifying the
    /// rest, which is where the `O(n³)` time goes.
    ///
    /// Yield order follows candidate order, not set id; collect and sort
    /// when order matters. A fully drained iterator yields exactly
    /// [`run`](Self::run)'s result set (chunking never changes which
    /// candidates survive). [`top_k`](Self::top_k) is ignored here;
    /// [`floor`](Self::floor) applies.
    pub fn iter(&self) -> Result<QueryIter<'e, 'r>, ConfigError> {
        let cfg = self.effective_cfg()?;
        let mut searcher = Searcher::new(self.engine.collection(), self.engine.index(), cfg);
        let pass = searcher.stage(self.r, Restriction::default());
        Ok(QueryIter {
            engine: self.engine,
            r: self.r,
            cfg,
            phi: Phi::new(cfg.similarity, cfg.alpha),
            searcher,
            pass,
            chunk: Vec::new().into_iter(),
            verified: 0,
            results: 0,
            vcost: VerifyCost::default(),
        })
    }
}

/// Streaming query results: filtering happens chunk by chunk and
/// verification one surviving candidate at a time, both inside
/// [`Iterator::next`].
pub struct QueryIter<'e, 'r> {
    engine: &'e Engine,
    r: &'r SetRecord,
    cfg: EngineConfig,
    phi: Phi,
    searcher: Searcher<'e>,
    pass: StagedPass,
    /// Survivors of the current chunk, not yet verified.
    chunk: std::vec::IntoIter<SetIdx>,
    verified: usize,
    results: usize,
    vcost: VerifyCost,
}

impl std::fmt::Debug for QueryIter<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryIter")
            .field("remaining_candidates", &self.remaining_candidates())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl QueryIter<'_, '_> {
    /// Pass counters as of now: candidate-selection counts are final,
    /// while the filter-stage counts (`after_check`/`after_nn`) and
    /// `verified`/`results`/`sim_evals` grow as the iterator advances.
    /// After exhaustion this equals the stats [`Query::run`] reports.
    pub fn stats(&self) -> PassStats {
        let mut stats = self.pass.stats;
        stats.verified += self.verified;
        stats.results += self.results;
        stats.sim_evals += self.vcost.sim_evals;
        stats.reduced_pairs += self.vcost.reduced_pairs;
        stats
    }

    /// How many candidates are still pending: unverified survivors of the
    /// current chunk plus candidates the filters have not seen yet.
    pub fn remaining_candidates(&self) -> usize {
        self.chunk.len() + self.pass.remaining()
    }
}

impl Iterator for QueryIter<'_, '_> {
    type Item = (SetIdx, f64);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            for sid in self.chunk.by_ref() {
                self.verified += 1;
                if let Some(score) = verify_pair(
                    self.r,
                    self.engine.collection().set(sid),
                    &self.cfg,
                    &self.phi,
                    &mut self.vcost,
                ) {
                    self.results += 1;
                    return Some((sid, score));
                }
            }
            if self.pass.remaining() == 0 {
                return None;
            }
            self.chunk = self
                .searcher
                .filter_chunk(self.r, &mut self.pass, ITER_CHUNK)
                .into_iter();
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining_candidates()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RelatednessMetric;
    use silkmoth_collection::paper_example::table2;
    use silkmoth_text::SimilarityFunction;

    fn engine(delta: f64) -> Engine {
        let (c, _) = table2();
        Engine::builder(c)
            .metric(RelatednessMetric::Containment)
            .phi(SimilarityFunction::Jaccard)
            .delta(delta)
            .build()
            .unwrap()
    }

    #[test]
    fn plain_query_equals_search() {
        let (_, r) = table2();
        let engine = engine(0.7);
        let q = engine.query(&r).run().unwrap();
        let s = engine.search(&r);
        assert_eq!(q.results, s.results);
        assert_eq!(q.stats, s.stats);
    }

    #[test]
    fn floor_out_of_range_is_an_error_not_a_clamp() {
        let (_, r) = table2();
        let engine = engine(0.7);
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = engine.query(&r).floor(bad).run().unwrap_err();
            assert!(matches!(err, ConfigError::FloorOutOfRange(_)), "{bad}");
            let err = engine.query(&r).floor(bad).iter().unwrap_err();
            assert!(matches!(err, ConfigError::FloorOutOfRange(_)), "{bad}");
        }
    }

    #[test]
    fn top_k_ranks_by_score_then_id() {
        let (_, r) = table2();
        let engine = engine(0.7);
        let all = engine.query(&r).floor(0.0).run().unwrap();
        // Every set has some relatedness to R in Table 2, so floor 0
        // admits all four; ranked output must be sorted score desc.
        assert_eq!(all.results.len(), 4);
        let top2 = engine.query(&r).floor(0.0).top_k(2).run().unwrap();
        assert_eq!(top2.results.len(), 2);
        assert!(top2.results[0].1 >= top2.results[1].1);
        assert_eq!(top2.results[0].0, 3); // S4 is the most related
    }

    #[test]
    fn iter_drained_equals_run() {
        let (_, r) = table2();
        for delta in [0.3, 0.5, 0.7] {
            let engine = engine(delta);
            let run = engine.query(&r).run().unwrap();
            let mut iter = engine.query(&r).iter().unwrap();
            let mut streamed: Vec<(u32, f64)> = iter.by_ref().collect();
            streamed.sort_unstable_by_key(|&(sid, _)| sid);
            assert_eq!(streamed, run.results, "δ={delta}");
            assert_eq!(iter.stats(), run.stats, "δ={delta}");
        }
    }

    #[test]
    fn iter_chunked_filtering_equals_run_across_chunk_boundaries() {
        // A workload whose candidate set spans several ITER_CHUNK-sized
        // chunks (floor 0 admits every set), so the chunked filter path is
        // exercised across boundaries — results and drained stats must
        // still match run() exactly.
        let raw: Vec<Vec<String>> = (0..(3 * super::ITER_CHUNK + 17))
            .map(|i| {
                (0..3)
                    .map(|j| format!("w{} w{} shared{}", (i * 3 + j) % 11, (i + j) % 7, i % 5))
                    .collect()
            })
            .collect();
        let c = silkmoth_collection::Collection::build(
            &raw,
            silkmoth_collection::Tokenization::Whitespace,
        );
        let engine = Engine::builder(c)
            .metric(RelatednessMetric::Similarity)
            .phi(SimilarityFunction::Jaccard)
            .delta(0.6)
            .build()
            .unwrap();
        let r = engine.collection().set(0).clone();
        for floor in [0.0, 0.2, 0.6] {
            let run = engine.query(&r).floor(floor).run().unwrap();
            let mut iter = engine.query(&r).floor(floor).iter().unwrap();
            if floor == 0.0 {
                // Floor 0 admits every set, so this floor is guaranteed to
                // span multiple chunks.
                assert!(iter.remaining_candidates() > super::ITER_CHUNK);
            }
            let mut streamed: Vec<(u32, f64)> = iter.by_ref().collect();
            streamed.sort_unstable_by_key(|&(sid, _)| sid);
            assert_eq!(streamed, run.results, "floor={floor}");
            assert_eq!(iter.stats(), run.stats, "floor={floor}");
            assert_eq!(iter.remaining_candidates(), 0);
        }
    }

    #[test]
    fn iter_early_termination_skips_filtering_of_later_chunks() {
        // With floor 0 every set is a candidate and every verification
        // succeeds, so after one next() only the first chunk can have been
        // filtered: the NN filter's sim_evals for later chunks must not
        // have been spent yet.
        let raw: Vec<Vec<String>> = (0..(2 * super::ITER_CHUNK + 9))
            .map(|i| vec![format!("a{} b{}", i % 13, i % 3), format!("c{}", i % 4)])
            .collect();
        let c = silkmoth_collection::Collection::build(
            &raw,
            silkmoth_collection::Tokenization::Whitespace,
        );
        let engine = Engine::builder(c)
            .metric(RelatednessMetric::Similarity)
            .phi(SimilarityFunction::Jaccard)
            .delta(0.7)
            .build()
            .unwrap();
        let r = engine.collection().set(0).clone();
        let full = engine.query(&r).floor(0.0).run().unwrap();
        let mut iter = engine.query(&r).floor(0.0).iter().unwrap();
        iter.next().expect("floor 0 always yields");
        let partial = iter.stats();
        assert!(
            partial.after_nn < full.stats.after_nn,
            "later chunks must not have been filtered yet ({} vs {})",
            partial.after_nn,
            full.stats.after_nn
        );
        assert!(partial.verified < full.stats.verified);
        // Draining afterwards still converges to the run() stats.
        iter.by_ref().for_each(drop);
        assert_eq!(iter.stats(), full.stats);
    }

    #[test]
    fn iter_supports_early_termination() {
        let (_, r) = table2();
        let engine = engine(0.3);
        let run = engine.query(&r).run().unwrap();
        assert!(run.results.len() > 1, "need >1 result for this test");
        let mut iter = engine.query(&r).iter().unwrap();
        let first = iter.next().unwrap();
        // Only part of the verification work has happened.
        assert!(iter.stats().verified < run.stats.verified);
        assert!(run.results.contains(&first));
    }
}
