//! Parameterized, streamable searches over an [`Engine`].

use crate::config::{ConfigError, EngineConfig};
use crate::engine::{Engine, SearchOutput};
use crate::filter::{PassStats, Restriction, Searcher};
use crate::phi::Phi;
use crate::verify::{verify_pair, VerifyCost};
use silkmoth_collection::{SetIdx, SetRecord};

/// A parameterized RELATED SET SEARCH, created by [`Engine::query`].
///
/// By default [`run`](Self::run) behaves exactly like
/// [`Engine::search`]: all sets related to the reference at the engine's
/// δ, in ascending set-id order. Two per-query overrides compose on top:
///
/// * [`floor`](Self::floor) replaces the relatedness threshold for this
///   query only (validated to lie in `[0, 1]` — out-of-range floors are a
///   [`ConfigError::FloorOutOfRange`], never silently clamped);
/// * [`top_k`](Self::top_k) ranks the results by score and keeps the `k`
///   best. Ties are broken deterministically: **score descending, then
///   set id ascending**.
///
/// [`iter`](Self::iter) streams `(set, score)` results as verification
/// proves them, for early termination; `top_k` does not apply there
/// (ranking needs the full result set).
#[derive(Clone, Copy)]
pub struct Query<'e, 'r> {
    engine: &'e Engine,
    r: &'r SetRecord,
    k: Option<usize>,
    floor: Option<f64>,
}

impl<'e, 'r> Query<'e, 'r> {
    pub(crate) fn new(engine: &'e Engine, r: &'r SetRecord) -> Self {
        Self {
            engine,
            r,
            k: None,
            floor: None,
        }
    }

    /// Keep only the `k` most related sets, ranked by score descending
    /// with ties broken by ascending set id. Usually combined with
    /// [`floor`](Self::floor), since the engine's δ still decides which
    /// sets are admitted at all.
    pub fn top_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Overrides the relatedness threshold for this query: only sets with
    /// relatedness ≥ `floor` are returned, and the search pass prunes
    /// with δ = `floor` — the same exactness guarantee, down to the
    /// floor.
    ///
    /// `floor` must lie in `[0, 1]`; anything else makes
    /// [`run`](Self::run)/[`iter`](Self::iter) return
    /// [`ConfigError::FloorOutOfRange`]. A floor of exactly 0 admits
    /// every set — relatedness ≥ 0 always holds — so the pass degenerates
    /// to ranking the whole collection, which is exact but slow (the
    /// paper's footnote 2).
    pub fn floor(mut self, floor: f64) -> Self {
        self.floor = Some(floor);
        self
    }

    /// The engine-level configuration with the query's floor applied.
    fn effective_cfg(&self) -> Result<EngineConfig, ConfigError> {
        let mut cfg = *self.engine.config();
        if let Some(floor) = self.floor {
            if !(0.0..=1.0).contains(&floor) {
                return Err(ConfigError::FloorOutOfRange(floor));
            }
            // A zero floor still needs a positive δ for the pass's
            // threshold arithmetic; MIN_POSITIVE is within VERIFY_EPS of
            // zero, so even relatedness-0 sets verify (floor 0 = rank
            // everything).
            cfg.delta = floor.max(f64::MIN_POSITIVE);
        }
        Ok(cfg)
    }

    /// Runs the full search pass and returns all results at once.
    ///
    /// Without [`top_k`](Self::top_k), results are in ascending set-id
    /// order; with it, score descending (ties by ascending id),
    /// truncated to `k`.
    pub fn run(&self) -> Result<SearchOutput, ConfigError> {
        let cfg = self.effective_cfg()?;
        let mut searcher = Searcher::new(self.engine.collection(), self.engine.index(), cfg);
        let (mut results, stats) = searcher.run(self.r, Restriction::default());
        if let Some(k) = self.k {
            results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            results.truncate(k);
        }
        Ok(SearchOutput { results, stats })
    }

    /// Streams results as verification proves them, instead of waiting
    /// for the whole pass: candidate selection and filtering run up
    /// front (they are index-bound and fast), then each surviving
    /// candidate is verified lazily as the iterator is advanced — so a
    /// caller that stops after the first hit never pays for verifying
    /// the rest, which is where the `O(n³)` time goes.
    ///
    /// Yield order follows candidate order, not set id; collect and sort
    /// when order matters. A fully drained iterator yields exactly
    /// [`run`](Self::run)'s result set. [`top_k`](Self::top_k) is
    /// ignored here; [`floor`](Self::floor) applies.
    pub fn iter(&self) -> Result<QueryIter<'e, 'r>, ConfigError> {
        let cfg = self.effective_cfg()?;
        let mut searcher = Searcher::new(self.engine.collection(), self.engine.index(), cfg);
        let (survivors, stats) = searcher.survivors(self.r, Restriction::default());
        Ok(QueryIter {
            engine: self.engine,
            r: self.r,
            cfg,
            phi: Phi::new(cfg.similarity, cfg.alpha),
            survivors: survivors.into_iter(),
            stats,
            vcost: VerifyCost::default(),
        })
    }
}

/// Streaming query results: verification happens in [`next`], one
/// surviving candidate at a time.
///
/// [next]: Iterator::next
pub struct QueryIter<'e, 'r> {
    engine: &'e Engine,
    r: &'r SetRecord,
    cfg: EngineConfig,
    phi: Phi,
    survivors: std::vec::IntoIter<SetIdx>,
    stats: PassStats,
    vcost: VerifyCost,
}

impl std::fmt::Debug for QueryIter<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryIter")
            .field("remaining_candidates", &self.survivors.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl QueryIter<'_, '_> {
    /// Pass counters as of now: filter-stage counts are final, while
    /// `verified`/`results`/`sim_evals` grow as the iterator advances.
    /// After exhaustion this equals the stats [`Query::run`] reports.
    pub fn stats(&self) -> PassStats {
        let mut stats = self.stats;
        stats.sim_evals += self.vcost.sim_evals;
        stats.reduced_pairs += self.vcost.reduced_pairs;
        stats
    }

    /// How many surviving candidates are still unverified.
    pub fn remaining_candidates(&self) -> usize {
        self.survivors.len()
    }
}

impl Iterator for QueryIter<'_, '_> {
    type Item = (SetIdx, f64);

    fn next(&mut self) -> Option<Self::Item> {
        for sid in self.survivors.by_ref() {
            self.stats.verified += 1;
            if let Some(score) = verify_pair(
                self.r,
                self.engine.collection().set(sid),
                &self.cfg,
                &self.phi,
                &mut self.vcost,
            ) {
                self.stats.results += 1;
                return Some((sid, score));
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.survivors.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RelatednessMetric;
    use silkmoth_collection::paper_example::table2;
    use silkmoth_text::SimilarityFunction;

    fn engine(delta: f64) -> Engine {
        let (c, _) = table2();
        Engine::builder(c)
            .metric(RelatednessMetric::Containment)
            .phi(SimilarityFunction::Jaccard)
            .delta(delta)
            .build()
            .unwrap()
    }

    #[test]
    fn plain_query_equals_search() {
        let (_, r) = table2();
        let engine = engine(0.7);
        let q = engine.query(&r).run().unwrap();
        let s = engine.search(&r);
        assert_eq!(q.results, s.results);
        assert_eq!(q.stats, s.stats);
    }

    #[test]
    fn floor_out_of_range_is_an_error_not_a_clamp() {
        let (_, r) = table2();
        let engine = engine(0.7);
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = engine.query(&r).floor(bad).run().unwrap_err();
            assert!(matches!(err, ConfigError::FloorOutOfRange(_)), "{bad}");
            let err = engine.query(&r).floor(bad).iter().unwrap_err();
            assert!(matches!(err, ConfigError::FloorOutOfRange(_)), "{bad}");
        }
    }

    #[test]
    fn top_k_ranks_by_score_then_id() {
        let (_, r) = table2();
        let engine = engine(0.7);
        let all = engine.query(&r).floor(0.0).run().unwrap();
        // Every set has some relatedness to R in Table 2, so floor 0
        // admits all four; ranked output must be sorted score desc.
        assert_eq!(all.results.len(), 4);
        let top2 = engine.query(&r).floor(0.0).top_k(2).run().unwrap();
        assert_eq!(top2.results.len(), 2);
        assert!(top2.results[0].1 >= top2.results[1].1);
        assert_eq!(top2.results[0].0, 3); // S4 is the most related
    }

    #[test]
    fn iter_drained_equals_run() {
        let (_, r) = table2();
        for delta in [0.3, 0.5, 0.7] {
            let engine = engine(delta);
            let run = engine.query(&r).run().unwrap();
            let mut iter = engine.query(&r).iter().unwrap();
            let mut streamed: Vec<(u32, f64)> = iter.by_ref().collect();
            streamed.sort_unstable_by_key(|&(sid, _)| sid);
            assert_eq!(streamed, run.results, "δ={delta}");
            assert_eq!(iter.stats(), run.stats, "δ={delta}");
        }
    }

    #[test]
    fn iter_supports_early_termination() {
        let (_, r) = table2();
        let engine = engine(0.3);
        let run = engine.query(&r).run().unwrap();
        assert!(run.results.len() > 1, "need >1 result for this test");
        let mut iter = engine.query(&r).iter().unwrap();
        let first = iter.next().unwrap();
        // Only part of the verification work has happened.
        assert!(iter.stats().verified < run.stats.verified);
        assert!(run.results.contains(&first));
    }
}
