//! Exact optimal signature selection — a test oracle for Problem 3.
//!
//! Optimal valid-signature selection is NP-complete (Theorem 2), so the
//! engine uses greedy heuristics; this module solves small instances
//! exactly by branch-and-bound over subsets of `R^T`, letting tests
//! measure the heuristics' quality and verify that greedy signatures are
//! never *invalid*.
//!
//! Only the α = 0 weighted scheme (Jaccard) is covered — exactly the
//! setting of Problem 3.

use silkmoth_collection::{InvertedIndex, SetRecord};
use silkmoth_text::TokenId;

/// Exact minimum `Σ|I[t]|` over valid signatures of `r` (weighted scheme,
/// Definition 5), with one witness signature. Returns `None` when no valid
/// signature exists (only possible with pathological empty elements).
///
/// Exponential in `|R^T|` — intended for `|R^T| ≤ ~20`.
pub fn optimal_signature(
    r: &SetRecord,
    theta: f64,
    index: &InvertedIndex,
) -> Option<(usize, Vec<TokenId>)> {
    let tokens = r.all_tokens();
    assert!(
        tokens.len() <= 24,
        "optimal_signature is an exponential oracle; got {} tokens",
        tokens.len()
    );
    // Membership matrix: for each element, which token indices it contains.
    let elem_masks: Vec<u64> = r
        .elements
        .iter()
        .map(|e| {
            let mut m = 0u64;
            for (bit, t) in tokens.iter().enumerate() {
                if e.tokens.binary_search(t).is_ok() {
                    m |= 1 << bit;
                }
            }
            m
        })
        .collect();
    let sizes: Vec<usize> = r.elements.iter().map(|e| e.tokens.len()).collect();
    let costs: Vec<usize> = tokens.iter().map(|&t| index.cost(t)).collect();

    let validity_sum = |mask: u64| -> f64 {
        elem_masks
            .iter()
            .zip(&sizes)
            .map(|(&em, &sz)| {
                if sz == 0 {
                    1.0
                } else {
                    let k = (em & mask).count_ones() as usize;
                    (sz - k) as f64 / sz as f64
                }
            })
            .sum()
    };

    let mut best: Option<(usize, u64)> = None;
    // Order tokens by cost ascending so cheap prefixes are explored first.
    let mut order: Vec<usize> = (0..tokens.len()).collect();
    order.sort_unstable_by_key(|&i| costs[i]);

    #[allow(clippy::too_many_arguments)]
    fn rec(
        pos: usize,
        mask: u64,
        cost: usize,
        order: &[usize],
        costs: &[usize],
        validity_sum: &dyn Fn(u64) -> f64,
        theta: f64,
        best: &mut Option<(usize, u64)>,
    ) {
        if let Some((bc, _)) = best {
            if cost >= *bc {
                return; // bound: can only get more expensive
            }
        }
        if validity_sum(mask) < theta {
            *best = Some((cost, mask));
            return; // adding more tokens only raises cost
        }
        if pos == order.len() {
            return;
        }
        let i = order[pos];
        rec(
            pos + 1,
            mask | (1 << i),
            cost + costs[i],
            order,
            costs,
            validity_sum,
            theta,
            best,
        );
        rec(pos + 1, mask, cost, order, costs, validity_sum, theta, best);
    }
    rec(0, 0, 0, &order, &costs, &validity_sum, theta, &mut best);

    best.map(|(cost, mask)| {
        let chosen: Vec<TokenId> = tokens
            .iter()
            .enumerate()
            .filter(|(bit, _)| mask & (1 << bit) != 0)
            .map(|(_, &t)| t)
            .collect();
        (cost, chosen)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SignatureScheme;
    use crate::signature::{generate, SigKind, SigParams};
    use silkmoth_collection::paper_example::table2;
    use silkmoth_collection::InvertedIndex;

    #[test]
    fn table2_optimum_is_the_example7_signature() {
        // Example 7's greedy signature {t8..t12} costs 3+3+1+1+1 = 9;
        // the oracle confirms 9 is optimal for θ = 2.1.
        let (c, r) = table2();
        let index = InvertedIndex::build(&c);
        let (cost, _sig) = optimal_signature(&r, 2.1, &index).unwrap();
        assert_eq!(cost, 9);
    }

    #[test]
    fn greedy_is_within_optimal_bound_and_valid() {
        let (c, r) = table2();
        let index = InvertedIndex::build(&c);
        for delta in [0.4, 0.55, 0.7, 0.85] {
            let theta = delta * r.len() as f64;
            let (opt_cost, _) = optimal_signature(&r, theta, &index).unwrap();
            let sig = generate(
                &r,
                SignatureScheme::Weighted,
                SigParams {
                    theta,
                    alpha: 0.0,
                    kind: SigKind::Jaccard,
                },
                &index,
            );
            assert!(!sig.degenerate);
            let greedy_cost = sig.cost(&index);
            assert!(greedy_cost >= opt_cost, "greedy can't beat the oracle");
            // Loose quality bound: greedy stays within 4× on this fixture.
            assert!(
                greedy_cost <= opt_cost * 4,
                "δ={delta}: greedy={greedy_cost} optimal={opt_cost}"
            );
            // Validity of the greedy signature (Definition 5).
            assert!(sig.sum_bound < theta);
        }
    }

    #[test]
    fn optimum_monotone_in_theta() {
        let (c, r) = table2();
        let index = InvertedIndex::build(&c);
        let mut last = 0usize;
        for delta in [0.9, 0.7, 0.5, 0.3] {
            // θ shrinks as δ shrinks, demanding a larger (costlier) signature.
            let (cost, _) = optimal_signature(&r, delta * 3.0, &index).unwrap();
            assert!(cost >= last, "lower θ needs a bigger signature");
            last = cost;
        }
    }
}
