//! The paper's worked examples (Tables 1–2, Examples 1–13), executed
//! end-to-end against the public API. Each test cites the example it
//! reproduces.

use silkmoth::core::{explain_pair, generate_signature, SigKind, SigParams};
use std::sync::Arc;

use silkmoth::{
    Collection, Engine, EngineConfig, FilterKind, InvertedIndex, RelatednessMetric,
    SignatureScheme, SimilarityFunction, Tokenization,
};

fn table2() -> (Collection, silkmoth::SetRecord) {
    silkmoth::collection::paper_example::table2()
}

fn tid(i: usize) -> u32 {
    silkmoth::collection::paper_example::tid(i)
}

/// Example 1: containment and similarity of Table 1's Address/Location
/// columns under Jaccard with α = 0.2.
///
/// Note: the paper reports per-element similarities (1/3, 1/3, 3/5); under
/// distinct-whitespace-token Jaccard the exact alignments differ slightly
/// (3/7, 1/4, 3/7) but the structure — all three Location rows align with
/// their Address counterparts — is identical.
#[test]
fn example1_table1_alignment() {
    let location = vec![
        "77 Mass Ave Boston MA",
        "5th St 02115 Seattle WA",
        "77 5th St Chicago IL",
    ];
    let address = vec![
        "77 Massachusetts Avenue Boston MA",
        "Fifth Street Seattle MA 02115",
        "77 Fifth Street Chicago IL",
        "One Kendall Square Cambridge MA",
    ];
    let corpus = vec![address];
    let collection = Arc::new(Collection::build(&corpus, Tokenization::Whitespace));
    let cfg = EngineConfig::full(
        RelatednessMetric::Containment,
        SimilarityFunction::Jaccard,
        0.3,
        0.2,
    );
    let engine = Engine::new(collection.clone(), cfg).unwrap();
    let r = collection.encode_set(&location);
    let out = engine.search(&r);
    assert_eq!(out.results.len(), 1);
    let contain = out.results[0].1;
    // Under our tokenization: (3/7 + 1/4 + 3/7) / 3 ≈ 0.369.
    assert!((contain - (3.0 / 7.0 + 0.25 + 3.0 / 7.0) / 3.0).abs() < 1e-9);

    // Similarity metric on the same pair (Definition 1).
    let cfg_sim = EngineConfig {
        metric: RelatednessMetric::Similarity,
        delta: 0.15,
        ..cfg
    };
    let engine = Engine::new(collection.clone(), cfg_sim).unwrap();
    let out = engine.search(&r);
    assert_eq!(out.results.len(), 1);
    let m = 3.0 / 7.0 + 0.25 + 3.0 / 7.0;
    assert!((out.results[0].1 - m / (3.0 + 4.0 - m)).abs() < 1e-9);
}

/// Example 2: contain(R, S4) ≈ 0.743 > 0.7 via alignments
/// r1→s41 (0.8), r2→s42 (1.0), r3→s43 (3/7); S1–S3 all below δ.
#[test]
fn example2_search_returns_only_s4() {
    let (c, r) = table2();
    let cfg = EngineConfig::full(
        RelatednessMetric::Containment,
        SimilarityFunction::Jaccard,
        0.7,
        0.0,
    );
    let engine = Engine::new(c.clone(), cfg).unwrap();
    let out = engine.search(&r);
    assert_eq!(out.results.len(), 1);
    assert_eq!(out.results[0].0, 3);
    let expected = (0.8 + 1.0 + 3.0 / 7.0) / 3.0;
    assert!((out.results[0].1 - expected).abs() < 1e-9);
}

/// Example 3: with the Example 6 weighted signature the initial candidates
/// are S2, S3, S4 and the verified result is S4.
#[test]
fn example3_candidate_funnel() {
    let (c, r) = table2();
    let cfg = EngineConfig {
        metric: RelatednessMetric::Containment,
        similarity: SimilarityFunction::Jaccard,
        delta: 0.7,
        alpha: 0.0,
        scheme: SignatureScheme::Weighted,
        filter: FilterKind::None,
        reduction: false,
    };
    let engine = Engine::new(c.clone(), cfg).unwrap();
    let out = engine.search(&r);
    assert_eq!(out.stats.candidates, 3, "S2, S3, S4");
    assert_eq!(out.stats.verified, 3);
    assert_eq!(out.results.len(), 1);
}

/// Examples 4–6: R^T spans t1..t12; the Example 6 signature
/// K^T = {t8, t9, t10, t11, t12} is valid in the weighted scheme with
/// Σ (|ri|−|ki|)/|ri| = 2 < θ = 2.1.
#[test]
fn examples4_to_6_weighted_signature() {
    let (c, r) = table2();
    assert_eq!(r.all_tokens().len(), 12);
    let index = InvertedIndex::build(&c);
    let sig = generate_signature(
        &r,
        SignatureScheme::Weighted,
        SigParams {
            theta: 2.1,
            alpha: 0.0,
            kind: SigKind::Jaccard,
        },
        &index,
    );
    assert_eq!(
        sig.flat_tokens(),
        vec![tid(8), tid(9), tid(10), tid(11), tid(12)]
    );
    assert!((sig.sum_bound - 2.0).abs() < 1e-12);
}

/// Example 5: the unweighted scheme removes c − 1 = 2 token occurrences.
#[test]
fn example5_unweighted_removal_count() {
    let (c, r) = table2();
    let index = InvertedIndex::build(&c);
    let sig = generate_signature(
        &r,
        SignatureScheme::Unweighted,
        SigParams {
            theta: 2.1,
            alpha: 0.0,
            kind: SigKind::Jaccard,
        },
        &index,
    );
    // 15 token occurrences minus 2 removed = 13 units kept.
    let kept: usize = sig.elems.iter().map(|e| e.units).sum();
    assert_eq!(kept, 13);
}

/// Example 7: greedy cost/value ordering selects t12, t11, t10, t9, t8.
#[test]
fn example7_greedy_costs() {
    let (c, _) = table2();
    let index = InvertedIndex::build(&c);
    let want = [9, 8, 7, 6, 6, 6, 5, 3, 3, 1, 1, 1];
    for (i, &w) in want.iter().enumerate() {
        assert_eq!(index.cost(tid(i + 1)), w);
    }
}

/// Examples 8 & 9: the check filter rejects S2; the NN filter rejects S3
/// with the early-termination estimate 5/6 + 0.6 + 0.125 < 2.1 — our
/// explain API exposes exactly those intermediate quantities.
#[test]
fn examples8_and_9_filter_internals() {
    let (c, r) = table2();
    let index = InvertedIndex::build(&c);
    let cfg = EngineConfig {
        metric: RelatednessMetric::Containment,
        similarity: SimilarityFunction::Jaccard,
        delta: 0.7,
        alpha: 0.0,
        scheme: SignatureScheme::Weighted,
        filter: FilterKind::CheckAndNearestNeighbor,
        reduction: false,
    };
    // S2 (Example 8): Jac(r1, s21) = 0.6 < 0.8 and Jac(r2, s23) = 0.25 < 0.6.
    let s2 = explain_pair(&r, c.set(1), &cfg, &index);
    assert!(s2.is_candidate && !s2.passes_check_filter);
    assert!(s2.elements[0].best_shared_sim.unwrap() < 0.8);

    // S3 (Example 9): NN of r1 is s31 at 5/6; r2's true NN similarity is
    // 0.125; r3 is bounded by 0.6.
    let s3 = explain_pair(&r, c.set(2), &cfg, &index);
    assert!(s3.passes_check_filter && !s3.passes_nn_filter);
    assert!((s3.elements[0].nearest_neighbor_sim - 5.0 / 6.0).abs() < 1e-9);
    assert!((s3.elements[1].nearest_neighbor_sim - 0.125).abs() < 1e-9);

    // S4 passes everything.
    let s4 = explain_pair(&r, c.set(3), &cfg, &index);
    assert!(s4.passes_nn_filter && s4.related);
}

/// Example 10: with α = 0.7, M^T = {t6, t8, t9, t10, t11, t12} is a
/// sim-thresh signature — caps are ⌊0.3·5⌋ + 1 = 2 per element.
#[test]
fn example10_sim_thresh_cap() {
    use silkmoth::core::signature::sim_thresh_cap;
    assert_eq!(sim_thresh_cap(5, 5, 0.7, SigKind::Jaccard), Some(2));
}

/// Examples 11 & 12: at α = δ = 0.7 the skyline heuristic returns
/// L^T = K^T = {t8, t9, t10, t11, t12}.
#[test]
fn example12_skyline() {
    let (c, r) = table2();
    let index = InvertedIndex::build(&c);
    let sig = generate_signature(
        &r,
        SignatureScheme::Skyline,
        SigParams {
            theta: 2.1,
            alpha: 0.7,
            kind: SigKind::Jaccard,
        },
        &index,
    );
    assert_eq!(
        sig.flat_tokens(),
        vec![tid(8), tid(9), tid(10), tid(11), tid(12)]
    );
}

/// Example 13: the dichotomy heuristic saturates r3 after t12, t11 and
/// stops with L^T = {t11, t12}.
#[test]
fn example13_dichotomy() {
    let (c, r) = table2();
    let index = InvertedIndex::build(&c);
    let sig = generate_signature(
        &r,
        SignatureScheme::Dichotomy,
        SigParams {
            theta: 2.1,
            alpha: 0.7,
            kind: SigKind::Jaccard,
        },
        &index,
    );
    assert_eq!(sig.flat_tokens(), vec![tid(11), tid(12)]);
    assert!(sig.elems[2].saturated);
}

/// §2.1's similarity values: Jac example and both edit similarities.
#[test]
fn section2_similarity_functions() {
    assert!(
        (silkmoth::text::jaccard_str("50 Vassar St MA", "50 Vassar Street MA") - 0.6).abs() < 1e-12
    );
    assert!(
        (silkmoth::text::eds("50 Vassar St MA", "50 Vassar Street MA") - 15.0 / 19.0).abs() < 1e-12
    );
    let ld = silkmoth::text::lev::levenshtein("50 Vassar St MA", "50 Vassar Street MA");
    assert_eq!(ld, 4);
    let neds = silkmoth::text::neds("50 Vassar St MA", "50 Vassar Street MA");
    assert!((neds - (1.0 - 4.0 / 19.0)).abs() < 1e-12);
}

/// All five schemes, end to end, return exactly {S4} for the running
/// containment query at δ = 0.7 — Lemma 1's "no false negatives" on the
/// paper's own example.
#[test]
fn all_schemes_agree_on_running_example() {
    let (c, r) = table2();
    for scheme in [
        SignatureScheme::Unweighted,
        SignatureScheme::Weighted,
        SignatureScheme::CombinedUnweighted,
        SignatureScheme::Skyline,
        SignatureScheme::Dichotomy,
    ] {
        for alpha in [0.0, 0.25, 0.5, 0.7] {
            let cfg = EngineConfig {
                metric: RelatednessMetric::Containment,
                similarity: SimilarityFunction::Jaccard,
                delta: 0.7,
                alpha,
                scheme,
                filter: FilterKind::CheckAndNearestNeighbor,
                reduction: alpha == 0.0,
            };
            let engine = Engine::new(c.clone(), cfg).unwrap();
            let out = engine.search(&r);
            let ids: Vec<u32> = out.results.iter().map(|x| x.0).collect();
            // Jac(r3, s43) = 3/7 ≈ 0.43 is clamped to zero once α exceeds
            // it, dropping contain(R, S4) to 1.8/3 = 0.6 < δ.
            let expected: Vec<u32> = if alpha <= 3.0 / 7.0 { vec![3] } else { vec![] };
            assert_eq!(ids, expected, "{scheme:?} α={alpha}");
        }
    }
}
