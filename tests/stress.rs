//! Medium-scale smoke tests: determinism, parallel/serial equivalence,
//! cross-mode consistency, and instrumentation sanity on corpora large
//! enough to exercise every code path (degenerate signatures, saturated
//! elements, reduction, early termination) without slowing CI down.

use std::sync::Arc;

use silkmoth::{
    Collection, Engine, EngineConfig, FilterKind, RelatednessMetric, SignatureScheme,
    SimilarityFunction, Tokenization,
};

#[test]
fn discovery_is_deterministic_across_runs_and_threads() {
    let corpus = silkmoth::datagen::dblp_titles(&silkmoth::DblpConfig {
        num_sets: 600,
        ..Default::default()
    });
    let collection = Arc::new(Collection::build(&corpus, Tokenization::QGram { q: 3 }));
    let cfg = EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Eds { q: 3 },
        0.8,
        0.8,
    );
    let engine = Engine::new(collection.clone(), cfg).unwrap();
    let serial1 = engine.discover_self();
    let serial2 = engine.discover_self();
    assert_eq!(serial1.pairs.len(), serial2.pairs.len());
    for (a, b) in serial1.pairs.iter().zip(&serial2.pairs) {
        assert_eq!((a.r, a.s), (b.r, b.s));
        assert_eq!(a.score.to_bits(), b.score.to_bits(), "bitwise determinism");
    }
    for threads in [2, 3, 8] {
        let par = engine.discover_self_parallel(threads);
        assert_eq!(par.pairs.len(), serial1.pairs.len(), "threads={threads}");
        for (a, b) in par.pairs.iter().zip(&serial1.pairs) {
            assert_eq!((a.r, a.s), (b.r, b.s));
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        assert_eq!(par.stats, serial1.stats);
    }
}

#[test]
fn search_and_discovery_agree() {
    // Every pair reported by self-discovery must also be reported by a
    // direct search from its reference side, and vice versa.
    let corpus = silkmoth::datagen::webtable_schemas(&silkmoth::SchemaConfig {
        num_sets: 250,
        ..Default::default()
    });
    let collection = Arc::new(Collection::build(&corpus, Tokenization::Whitespace));
    let cfg = EngineConfig::full(
        RelatednessMetric::Containment,
        SimilarityFunction::Jaccard,
        0.7,
        0.25,
    );
    let engine = Engine::new(collection.clone(), cfg).unwrap();
    let discovery = engine.discover_self();
    let mut from_search = Vec::new();
    for rid in 0..collection.len() as u32 {
        for (sid, score) in engine.search(collection.set(rid)).results {
            if sid != rid {
                from_search.push((rid, sid, score));
            }
        }
    }
    let d: Vec<(u32, u32)> = discovery.pairs.iter().map(|p| (p.r, p.s)).collect();
    let s: Vec<(u32, u32)> = from_search.iter().map(|&(r, s, _)| (r, s)).collect();
    assert_eq!(d, s);
}

#[test]
fn funnel_counts_are_sane_at_scale() {
    let corpus = silkmoth::datagen::webtable_columns(&silkmoth::ColumnsConfig {
        num_sets: 800,
        ..Default::default()
    });
    let collection = Arc::new(Collection::build(&corpus, Tokenization::Whitespace));
    let cfg = EngineConfig::full(
        RelatednessMetric::Containment,
        SimilarityFunction::Jaccard,
        0.7,
        0.5,
    );
    let engine = Engine::new(collection.clone(), cfg).unwrap();
    let out = engine.discover_self();
    let st = out.stats;
    assert!(st.candidates >= st.after_check);
    assert!(st.after_check >= st.after_nn);
    assert_eq!(st.after_nn, st.verified);
    assert!(st.verified >= st.results);
    assert_eq!(st.results, out.pairs.len());
    // The funnel must actually prune at these thresholds.
    assert!(
        st.after_nn * 4 < st.candidates.max(1),
        "filters pruned too little: {st:?}"
    );
    // Signature-based candidate selection must beat the quadratic space.
    let m = collection.len();
    assert!(st.candidates < m * (m - 1), "no pruning at all?");
}

#[test]
fn degenerate_edit_configuration_still_exact() {
    // q = 4 with δ = 0.7 violates q < δ/(1−δ) ≈ 2.33, so most passes are
    // degenerate (§7.3) — the engine must fall back to comparing against
    // every set and still match brute force.
    let corpus = silkmoth::datagen::dblp_titles(&silkmoth::DblpConfig {
        num_sets: 60,
        words_per_set: (2, 4),
        ..Default::default()
    });
    let collection = Arc::new(Collection::build(&corpus, Tokenization::QGram { q: 4 }));
    let cfg = EngineConfig {
        metric: RelatednessMetric::Similarity,
        similarity: SimilarityFunction::Eds { q: 4 },
        delta: 0.7,
        alpha: 0.0,
        scheme: SignatureScheme::Weighted,
        filter: FilterKind::CheckAndNearestNeighbor,
        reduction: false,
    };
    let engine = Engine::new(collection.clone(), cfg).unwrap();
    let fast = engine.discover_self();
    assert!(fast.stats.degenerate > 0, "expected degenerate passes");
    let slow = silkmoth::brute::discover_self(&collection, &cfg);
    let f: Vec<(u32, u32)> = fast.pairs.iter().map(|p| (p.r, p.s)).collect();
    let s: Vec<(u32, u32)> = slow.iter().map(|p| (p.r, p.s)).collect();
    assert_eq!(f, s);
}

#[test]
fn reduction_fires_and_preserves_results_at_scale() {
    let corpus = silkmoth::datagen::webtable_columns(&silkmoth::ColumnsConfig {
        num_sets: 150,
        values_per_set: (40, 80),
        ..Default::default()
    });
    let collection = Arc::new(Collection::build(&corpus, Tokenization::Whitespace));
    let base = EngineConfig::full(
        RelatednessMetric::Containment,
        SimilarityFunction::Jaccard,
        0.7,
        0.0,
    );
    let with = Engine::new(collection.clone(), base)
        .unwrap()
        .discover_self();
    let mut cfg2 = base;
    cfg2.reduction = false;
    let without = Engine::new(collection.clone(), cfg2)
        .unwrap()
        .discover_self();
    assert!(with.stats.reduced_pairs > 0, "reduction should fire");
    assert_eq!(with.pairs.len(), without.pairs.len());
    for (a, b) in with.pairs.iter().zip(&without.pairs) {
        assert_eq!((a.r, a.s), (b.r, b.s));
        assert!((a.score - b.score).abs() < 1e-9);
    }
    // Reduction does strictly less similarity work in verification.
    assert!(with.stats.sim_evals <= without.stats.sim_evals);
}
