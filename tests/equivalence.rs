//! The paper's central correctness promise (§1): SilkMoth produces
//! **exactly** the brute-force output — no false negatives, no false
//! positives — for every combination of metric, similarity function,
//! signature scheme, filter level, and threshold.
//!
//! These tests sweep that grid over small random corpora from all three
//! application generators.

use std::sync::Arc;

use silkmoth::{
    brute, Collection, Engine, EngineConfig, FilterKind, RelatednessMetric, SignatureScheme,
    SimilarityFunction, Tokenization,
};

fn assert_equivalent(collection: &Arc<Collection>, cfg: EngineConfig, label: &str) {
    let engine = Engine::new(Arc::clone(collection), cfg).expect("engine construction");
    let fast = engine.discover_self();
    let slow = brute::discover_self(collection, &cfg);
    let f: Vec<(u32, u32)> = fast.pairs.iter().map(|p| (p.r, p.s)).collect();
    let s: Vec<(u32, u32)> = slow.iter().map(|p| (p.r, p.s)).collect();
    assert_eq!(f, s, "pair mismatch: {label}");
    for (a, b) in fast.pairs.iter().zip(&slow) {
        assert!(
            (a.score - b.score).abs() < 1e-9,
            "score mismatch at ({}, {}): {label}",
            a.r,
            a.s
        );
    }
}

const ALL_SCHEMES: [SignatureScheme; 5] = [
    SignatureScheme::Unweighted,
    SignatureScheme::Weighted,
    SignatureScheme::CombinedUnweighted,
    SignatureScheme::Skyline,
    SignatureScheme::Dichotomy,
];

const ALL_FILTERS: [FilterKind; 3] = [
    FilterKind::None,
    FilterKind::Check,
    FilterKind::CheckAndNearestNeighbor,
];

#[test]
fn jaccard_schema_matching_grid() {
    let corpus = silkmoth::datagen::webtable_schemas(&silkmoth::SchemaConfig {
        num_sets: 90,
        ..Default::default()
    });
    let collection = Arc::new(Collection::build(&corpus, Tokenization::Whitespace));
    for metric in [
        RelatednessMetric::Similarity,
        RelatednessMetric::Containment,
    ] {
        for scheme in ALL_SCHEMES {
            for filter in ALL_FILTERS {
                for (delta, alpha) in [(0.7, 0.0), (0.75, 0.25), (0.8, 0.5), (0.7, 0.75)] {
                    for reduction in [false, true] {
                        let cfg = EngineConfig {
                            metric,
                            similarity: SimilarityFunction::Jaccard,
                            delta,
                            alpha,
                            scheme,
                            filter,
                            reduction,
                        };
                        assert_equivalent(
                            &collection,
                            cfg,
                            &format!("{metric:?}/{scheme:?}/{filter:?}/δ={delta}/α={alpha}/red={reduction}"),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn jaccard_inclusion_dependency_grid() {
    let corpus = silkmoth::datagen::webtable_columns(&silkmoth::ColumnsConfig {
        num_sets: 60,
        values_per_set: (5, 15),
        ..Default::default()
    });
    let collection = Arc::new(Collection::build(&corpus, Tokenization::Whitespace));
    for scheme in ALL_SCHEMES {
        for (delta, alpha) in [(0.7, 0.0), (0.7, 0.5), (0.85, 0.25)] {
            let cfg = EngineConfig {
                metric: RelatednessMetric::Containment,
                similarity: SimilarityFunction::Jaccard,
                delta,
                alpha,
                scheme,
                filter: FilterKind::CheckAndNearestNeighbor,
                reduction: true,
            };
            assert_equivalent(&collection, cfg, &format!("{scheme:?}/δ={delta}/α={alpha}"));
        }
    }
}

#[test]
fn eds_string_matching_grid() {
    let corpus = silkmoth::datagen::dblp_titles(&silkmoth::DblpConfig {
        num_sets: 70,
        words_per_set: (3, 8),
        ..Default::default()
    });
    // α = 0.8 → q = 3 (footnote 11).
    let q = 3;
    let collection = Arc::new(Collection::build(&corpus, Tokenization::QGram { q }));
    for scheme in ALL_SCHEMES {
        for (delta, alpha) in [(0.7, 0.8), (0.8, 0.8), (0.85, 0.85)] {
            let cfg = EngineConfig {
                metric: RelatednessMetric::Similarity,
                similarity: SimilarityFunction::Eds { q },
                delta,
                alpha,
                scheme,
                filter: FilterKind::CheckAndNearestNeighbor,
                reduction: false,
            };
            assert_equivalent(
                &collection,
                cfg,
                &format!("Eds {scheme:?}/δ={delta}/α={alpha}"),
            );
        }
    }
}

#[test]
fn eds_alpha_zero_weighted_schemes() {
    // α = 0 with edit similarity exercises the degenerate-signature path
    // (§7.3: the weighted scheme can be empty) and the no-shared-q-gram
    // bound in the NN filter.
    let corpus = silkmoth::datagen::dblp_titles(&silkmoth::DblpConfig {
        num_sets: 40,
        words_per_set: (2, 5),
        ..Default::default()
    });
    for q in [2, 3] {
        let collection = Arc::new(Collection::build(&corpus, Tokenization::QGram { q }));
        for scheme in [
            SignatureScheme::Weighted,
            SignatureScheme::Skyline,
            SignatureScheme::Dichotomy,
        ] {
            for filter in ALL_FILTERS {
                for delta in [0.6, 0.75] {
                    let cfg = EngineConfig {
                        metric: RelatednessMetric::Similarity,
                        similarity: SimilarityFunction::Eds { q },
                        delta,
                        alpha: 0.0,
                        scheme,
                        filter,
                        reduction: true,
                    };
                    assert_equivalent(
                        &collection,
                        cfg,
                        &format!("Eds α=0 q={q} {scheme:?}/{filter:?}/δ={delta}"),
                    );
                }
            }
        }
    }
}

#[test]
fn neds_variant() {
    let corpus = silkmoth::datagen::dblp_titles(&silkmoth::DblpConfig {
        num_sets: 50,
        words_per_set: (3, 6),
        ..Default::default()
    });
    let q = 3;
    let collection = Arc::new(Collection::build(&corpus, Tokenization::QGram { q }));
    for (delta, alpha) in [(0.7, 0.8), (0.8, 0.0)] {
        let cfg = EngineConfig {
            metric: RelatednessMetric::Similarity,
            similarity: SimilarityFunction::NEds { q },
            delta,
            alpha,
            scheme: SignatureScheme::Dichotomy,
            filter: FilterKind::CheckAndNearestNeighbor,
            reduction: true, // must be silently skipped for NEds
        };
        assert_equivalent(&collection, cfg, &format!("NEds δ={delta} α={alpha}"));
    }
}

#[test]
fn search_mode_matches_brute() {
    let corpus = silkmoth::datagen::webtable_columns(&silkmoth::ColumnsConfig {
        num_sets: 80,
        values_per_set: (5, 20),
        ..Default::default()
    });
    let collection = Arc::new(Collection::build(&corpus, Tokenization::Whitespace));
    let refs = silkmoth::datagen::pick_references(&corpus, 15, 4, 99);
    let cfg = EngineConfig::full(
        RelatednessMetric::Containment,
        SimilarityFunction::Jaccard,
        0.7,
        0.5,
    );
    let engine = Engine::new(collection.clone(), cfg).unwrap();
    for &rid in &refs {
        let r = collection.set(rid as u32);
        let fast = engine.search(r);
        let slow = brute::search(r, &collection, &cfg);
        let f: Vec<u32> = fast.results.iter().map(|x| x.0).collect();
        let s: Vec<u32> = slow.iter().map(|x| x.0).collect();
        assert_eq!(f, s, "reference {rid}");
    }
}

#[test]
fn pathological_corpora() {
    // Empty elements, duplicate elements, single-token sets, identical sets.
    let raw: Vec<Vec<&str>> = vec![
        vec!["", "a b", "a b"],
        vec!["a b", "", "c"],
        vec!["x"],
        vec!["x"],
        vec!["a b c d e f g h"],
        vec![""],
    ];
    let collection = Arc::new(Collection::build(&raw, Tokenization::Whitespace));
    for metric in [
        RelatednessMetric::Similarity,
        RelatednessMetric::Containment,
    ] {
        for scheme in [SignatureScheme::Weighted, SignatureScheme::Dichotomy] {
            for (delta, alpha) in [(0.5, 0.0), (0.8, 0.4)] {
                let cfg = EngineConfig {
                    metric,
                    similarity: SimilarityFunction::Jaccard,
                    delta,
                    alpha,
                    scheme,
                    filter: FilterKind::CheckAndNearestNeighbor,
                    reduction: true,
                };
                assert_equivalent(
                    &collection,
                    cfg,
                    &format!("pathological {metric:?}/{scheme:?}/δ={delta}/α={alpha}"),
                );
            }
        }
    }
}

#[test]
fn dice_and_cosine_extension_grid() {
    // The §2.1 extension functions: same exactness guarantee, adapted
    // weighted-scheme bounds, reduction never applied (their duals are not
    // metrics).
    let corpus = silkmoth::datagen::webtable_schemas(&silkmoth::SchemaConfig {
        num_sets: 80,
        ..Default::default()
    });
    let collection = Arc::new(Collection::build(&corpus, Tokenization::Whitespace));
    for similarity in [SimilarityFunction::Dice, SimilarityFunction::Cosine] {
        for metric in [
            RelatednessMetric::Similarity,
            RelatednessMetric::Containment,
        ] {
            for scheme in ALL_SCHEMES {
                for (delta, alpha) in [(0.7, 0.0), (0.8, 0.5), (0.75, 0.75)] {
                    let cfg = EngineConfig {
                        metric,
                        similarity,
                        delta,
                        alpha,
                        scheme,
                        filter: FilterKind::CheckAndNearestNeighbor,
                        reduction: true,
                    };
                    assert_equivalent(
                        &collection,
                        cfg,
                        &format!("{similarity:?}/{metric:?}/{scheme:?}/δ={delta}/α={alpha}"),
                    );
                }
            }
        }
    }
}
