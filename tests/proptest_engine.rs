//! Property-based end-to-end tests: on arbitrary random corpora and
//! thresholds, the engine's output equals brute force, signatures are
//! valid per Lemma 1/2, and per-stage candidate counts are monotone.

use proptest::prelude::*;
use std::sync::Arc;

use silkmoth::{
    brute, Collection, Engine, EngineConfig, FilterKind, RelatednessMetric, SignatureScheme,
    SimilarityFunction, Tokenization,
};

/// Strategy: a small random corpus over a tiny vocabulary so related
/// pairs appear organically.
fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    let word = prop_oneof![
        Just("alpha"),
        Just("beta"),
        Just("gamma"),
        Just("delta"),
        Just("eps"),
        Just("zeta"),
        Just("eta"),
        Just("theta"),
    ];
    let element = proptest::collection::vec(word, 1..5).prop_map(|ws| ws.join(" "));
    let set = proptest::collection::vec(element, 1..5);
    proptest::collection::vec(set, 2..10)
}

fn scheme_strategy() -> impl Strategy<Value = SignatureScheme> {
    prop_oneof![
        Just(SignatureScheme::Unweighted),
        Just(SignatureScheme::Weighted),
        Just(SignatureScheme::CombinedUnweighted),
        Just(SignatureScheme::Skyline),
        Just(SignatureScheme::Dichotomy),
    ]
}

fn filter_strategy() -> impl Strategy<Value = FilterKind> {
    prop_oneof![
        Just(FilterKind::None),
        Just(FilterKind::Check),
        Just(FilterKind::CheckAndNearestNeighbor),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn prop_engine_equals_brute(
        corpus in corpus_strategy(),
        scheme in scheme_strategy(),
        filter in filter_strategy(),
        metric_sim in any::<bool>(),
        delta in 0.3f64..0.95,
        alpha in prop_oneof![Just(0.0), 0.2f64..0.8],
        reduction in any::<bool>(),
    ) {
        let collection = Arc::new(Collection::build(&corpus, Tokenization::Whitespace));
        let cfg = EngineConfig {
            metric: if metric_sim { RelatednessMetric::Similarity } else { RelatednessMetric::Containment },
            similarity: SimilarityFunction::Jaccard,
            delta,
            alpha,
            scheme,
            filter,
            reduction,
        };
        let engine = Engine::new(collection.clone(), cfg).unwrap();
        let fast = engine.discover_self();
        let slow = brute::discover_self(&collection, &cfg);
        let f: Vec<(u32, u32)> = fast.pairs.iter().map(|p| (p.r, p.s)).collect();
        let s: Vec<(u32, u32)> = slow.iter().map(|p| (p.r, p.s)).collect();
        prop_assert_eq!(f, s);
        // Stage counts are monotone: candidates ≥ after_check ≥ after_nn ≥ results.
        let st = fast.stats;
        prop_assert!(st.candidates >= st.after_check);
        prop_assert!(st.after_check >= st.after_nn);
        prop_assert!(st.after_nn >= st.results);
    }

    #[test]
    fn prop_engine_equals_brute_edit(
        corpus in proptest::collection::vec(
            proptest::collection::vec("[ab]{1,6}", 1..4), 2..8),
        delta in 0.4f64..0.9,
        use_alpha in any::<bool>(),
        scheme in prop_oneof![
            Just(SignatureScheme::Weighted),
            Just(SignatureScheme::Skyline),
            Just(SignatureScheme::Dichotomy),
        ],
    ) {
        let q = 2;
        // α must exceed q/(q+1) = 2/3 to exercise the sim-thresh machinery
        // meaningfully; otherwise 0.
        let alpha = if use_alpha { 0.7 } else { 0.0 };
        let collection = Arc::new(Collection::build(&corpus, Tokenization::QGram { q }));
        let cfg = EngineConfig {
            metric: RelatednessMetric::Similarity,
            similarity: SimilarityFunction::Eds { q },
            delta,
            alpha,
            scheme,
            filter: FilterKind::CheckAndNearestNeighbor,
            reduction: true,
        };
        let engine = Engine::new(collection.clone(), cfg).unwrap();
        let fast = engine.discover_self();
        let slow = brute::discover_self(&collection, &cfg);
        let f: Vec<(u32, u32)> = fast.pairs.iter().map(|p| (p.r, p.s)).collect();
        let s: Vec<(u32, u32)> = slow.iter().map(|p| (p.r, p.s)).collect();
        prop_assert_eq!(f, s);
    }

    #[test]
    fn prop_signature_validity_lemma2_adversary(
        corpus in corpus_strategy(),
        delta in 0.3f64..0.95,
        scheme in scheme_strategy(),
    ) {
        // Lemma 1/2: for any generated (non-degenerate) signature and the
        // adversarial set S = {rᵢ \ kᵢ}, the matching score must be below
        // θ = δ|R| whenever S shares no token with the signature — i.e. a
        // set built to dodge the signature is provably unrelated.
        use silkmoth::core::{generate_signature, SigKind, SigParams};
        use silkmoth::InvertedIndex;

        let collection = Arc::new(Collection::build(&corpus, Tokenization::Whitespace));
        let index = InvertedIndex::build(&collection);
        let r = collection.set(0);
        let theta = delta * r.len() as f64;
        let sig = generate_signature(
            r,
            scheme,
            SigParams { theta, alpha: 0.0, kind: SigKind::Jaccard },
            &index,
        );
        prop_assume!(!sig.degenerate);
        // Adversarial S: strip each element of its signature tokens.
        let adversary: Vec<String> = r
            .elements
            .iter()
            .zip(&sig.elems)
            .map(|(e, se)| {
                e.tokens
                    .iter()
                    .filter(|t| !se.tokens.contains(t))
                    .map(|&t| collection.dict().token(t).to_owned())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        let s_rec = collection.encode_set(&adversary);
        let phi = silkmoth::core::Phi::new(SimilarityFunction::Jaccard, 0.0);
        let mut cost = silkmoth::core::VerifyCost::default();
        let m = silkmoth::core::matching_score(r, &s_rec, &phi, false, &mut cost);
        // The adversary shares no signature token, so validity demands
        // m < θ... but only when α = 0 schemes guarantee the weighted sum
        // bound; all our schemes do (check_prunable implies Σ < θ).
        if sig.check_prunable {
            prop_assert!(m < theta + 1e-9, "m = {m}, θ = {theta}");
        }
    }
}
