//! Integration tests for the library extensions beyond the paper:
//! top-k search, corpus serialization, the sparse verification path, and
//! the command-line tool.

use std::sync::Arc;

use silkmoth::{
    Collection, Engine, EngineConfig, RelatednessMetric, SimilarityFunction, Tokenization,
};

fn schema_collection(n: usize) -> Arc<Collection> {
    let corpus = silkmoth::datagen::webtable_schemas(&silkmoth::SchemaConfig {
        num_sets: n,
        ..Default::default()
    });
    Arc::new(Collection::build(&corpus, Tokenization::Whitespace))
}

#[test]
fn topk_matches_ranked_brute_force() {
    let collection = schema_collection(120);
    let cfg = EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.9, // engine δ is irrelevant; top-k uses the floor
        0.0,
    );
    let engine = Engine::new(collection.clone(), cfg).unwrap();
    let floor = 0.3;
    for rid in [0u32, 7, 33] {
        let r = collection.set(rid);
        let got = engine.query(r).top_k(5).floor(floor).run().unwrap();
        // Brute-force ranking at the same floor.
        let mut cfg_floor = cfg;
        cfg_floor.delta = floor;
        let mut want = silkmoth::brute::search(r, &collection, &cfg_floor);
        want.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        want.truncate(5);
        assert_eq!(got.results.len(), want.len(), "rid={rid}");
        for (g, w) in got.results.iter().zip(&want) {
            assert_eq!(g.0, w.0, "rid={rid}");
            assert!((g.1 - w.1).abs() < 1e-9);
        }
        // Scores are non-increasing.
        assert!(got.results.windows(2).all(|w| w[0].1 >= w[1].1 - 1e-12));
    }
}

#[test]
fn topk_zero_k_and_huge_k() {
    let collection = schema_collection(40);
    let cfg = EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.7,
        0.0,
    );
    let engine = Engine::new(collection.clone(), cfg).unwrap();
    let r = collection.set(0);
    assert!(engine
        .query(r)
        .top_k(0)
        .floor(0.3)
        .run()
        .unwrap()
        .results
        .is_empty());
    let all = engine.query(r).top_k(usize::MAX).floor(0.3).run().unwrap();
    let mut cfg_floor = cfg;
    cfg_floor.delta = 0.3;
    assert_eq!(
        all.results.len(),
        silkmoth::brute::search(r, &collection, &cfg_floor).len()
    );
}

#[test]
fn codec_roundtrip_preserves_discovery_results() {
    let collection = schema_collection(100);
    let bytes = silkmoth::collection::codec::encode(&collection);
    let restored = silkmoth::collection::codec::decode(&bytes).unwrap();
    let cfg = EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.7,
        0.25,
    );
    let a = Engine::new(collection.clone(), cfg)
        .unwrap()
        .discover_self();
    let b = Engine::new(restored, cfg).unwrap().discover_self();
    assert_eq!(a.pairs.len(), b.pairs.len());
    for (x, y) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!((x.r, x.s), (y.r, y.s));
        assert!((x.score - y.score).abs() < 1e-12);
    }
}

#[test]
fn cli_discover_and_search_smoke() {
    let dir = std::env::temp_dir().join(format!("silkmoth-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.sets");
    std::fs::write(
        &data,
        "# comment line\n\
         77 Mass Ave Boston MA|5th St 02115 Seattle WA|77 5th St Chicago IL\n\
         77 Massachusetts Avenue Boston MA|Fifth Street Seattle MA 02115|77 Fifth Street Chicago IL\n\
         apples oranges|red green blue\n",
    )
    .unwrap();
    let refs = dir.join("refs.sets");
    std::fs::write(&refs, "77 Mass Ave Boston MA|77 5th St Chicago IL\n").unwrap();

    let bin = env!("CARGO_BIN_EXE_silkmoth");
    // stats
    let out = std::process::Command::new(bin)
        .args(["stats", "--input", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("3 sets"));

    // discover
    let out = std::process::Command::new(bin)
        .args([
            "discover",
            "--input",
            data.to_str().unwrap(),
            "--metric",
            "similarity",
            "--delta",
            "0.2",
            "--quiet",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0\t1\t"), "address pair found: {text}");

    // search
    let out = std::process::Command::new(bin)
        .args([
            "search",
            "--input",
            data.to_str().unwrap(),
            "--reference",
            refs.to_str().unwrap(),
            "--metric",
            "containment",
            "--delta",
            "0.3",
            "--quiet",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().count() >= 1, "search output: {text}");

    // bad arguments exit non-zero
    let out = std::process::Command::new(bin)
        .args([
            "discover",
            "--input",
            data.to_str().unwrap(),
            "--metric",
            "bogus",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dice_cosine_end_to_end() {
    // Dice ≥ Jaccard pointwise, so a Dice run at the same δ finds at least
    // the Jaccard pairs.
    let collection = schema_collection(100);
    let mut cfg = EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.7,
        0.0,
    );
    let jac = Engine::new(collection.clone(), cfg)
        .unwrap()
        .discover_self();
    cfg.similarity = SimilarityFunction::Dice;
    cfg.reduction = false;
    let dice = Engine::new(collection.clone(), cfg)
        .unwrap()
        .discover_self();
    assert!(dice.pairs.len() >= jac.pairs.len());
    cfg.similarity = SimilarityFunction::Cosine;
    let cos = Engine::new(collection.clone(), cfg)
        .unwrap()
        .discover_self();
    assert!(cos.pairs.len() >= jac.pairs.len());
}
