//! Differential property harness for incremental collection updates.
//!
//! Correctness of the mutation layer is defined *differentially*: after
//! **any** sequence of appends, removals, and compactions, the output of
//! search / top-k / discover must be **byte-identical** — same ids, same
//! tie order, bit-for-bit equal scores — to an engine freshly built from
//! the equivalent live raw sets. This harness generates random op/query
//! interleavings (vendored proptest, seeded deterministically per test;
//! on failure the runner prints the case seed for reproduction) and
//! checks that equivalence simultaneously for:
//!
//! * the unsharded [`Engine`] mutated through [`Engine::apply`]
//!   (including id renumbering across `Update::Compact`), and
//! * [`ShardedEngine`]s with shard counts {1, 2, 7}, whose global ids
//!   are stable across every update.
//!
//! Removal renumbers nothing, so incremental ids and fresh-build ids
//! relate by the order-preserving "live order" map; order-preservation
//! is what keeps top-k tie order comparable.

use std::collections::HashMap;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silkmoth::server::{Json, Request, SearchService};
use silkmoth::{
    Collection, Engine, EngineConfig, RelatednessMetric, SetIdx, ShardedEngine, SimilarityFunction,
    Update,
};

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn cfg(rng: &mut StdRng) -> EngineConfig {
    let metric = if rng.random::<bool>() {
        RelatednessMetric::Similarity
    } else {
        RelatednessMetric::Containment
    };
    let delta = [0.4, 0.6, 0.8][rng.random_range(0..3usize)];
    let alpha = [0.0, 0.3][rng.random_range(0..2usize)];
    EngineConfig::full(metric, SimilarityFunction::Jaccard, delta, alpha)
}

fn gen_element(rng: &mut StdRng) -> String {
    let n = rng.random_range(1..=4usize);
    (0..n)
        .map(|_| {
            if rng.random::<bool>() {
                format!("w{}", rng.random_range(0..12u32))
            } else {
                format!("shared{}", rng.random_range(0..4u32))
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn gen_set(rng: &mut StdRng) -> Vec<String> {
    let n = rng.random_range(1..=4usize);
    (0..n).map(|_| gen_element(rng)).collect()
}

/// The harness state: one incremental engine per flavor plus the model
/// (live raw sets per stable global id).
struct Harness {
    cfg: EngineConfig,
    /// gid → live raw set (`None` = removed). Gids are the sharded
    /// engines' stable global ids; slots are never reused.
    slots: Vec<Option<Vec<String>>>,
    sharded: Vec<ShardedEngine>,
    /// The unsharded engine mutated through `Engine::apply`.
    inc: Engine,
    /// gid → the unsharded engine's current id for that set (compaction
    /// renumbers these via the returned remap).
    inc_ids: HashMap<SetIdx, SetIdx>,
}

impl Harness {
    fn new(rng: &mut StdRng) -> Self {
        let cfg = cfg(rng);
        let n = rng.random_range(8..=16usize);
        let base: Vec<Vec<String>> = (0..n).map(|_| gen_set(rng)).collect();
        let sharded = SHARD_COUNTS
            .iter()
            .map(|&s| ShardedEngine::build(&base, cfg, s).expect("valid config"))
            .collect();
        let inc = Engine::new(Collection::build(&base, cfg.tokenization()), cfg).unwrap();
        Self {
            cfg,
            inc_ids: (0..n as SetIdx).map(|i| (i, i)).collect(),
            slots: base.into_iter().map(Some).collect(),
            sharded,
            inc,
        }
    }

    fn live_gids(&self) -> Vec<SetIdx> {
        (0..self.slots.len() as SetIdx)
            .filter(|&g| self.slots[g as usize].is_some())
            .collect()
    }

    fn append(&mut self, sets: Vec<Vec<String>>) {
        for engine in &mut self.sharded {
            let out = engine.apply(Update::Append(sets.clone())).unwrap();
            // Every flavor assigns the same monotonic ids.
            let want: Vec<SetIdx> = (0..sets.len())
                .map(|i| (self.slots.len() + i) as SetIdx)
                .collect();
            assert_eq!(out.appended, want, "sharded gid assignment");
        }
        let out = self.inc.apply(Update::Append(sets.clone())).unwrap();
        for (i, &inc_id) in out.appended.iter().enumerate() {
            self.inc_ids
                .insert((self.slots.len() + i) as SetIdx, inc_id);
        }
        self.slots.extend(sets.into_iter().map(Some));
    }

    fn remove(&mut self, gids: Vec<SetIdx>) {
        for engine in &mut self.sharded {
            engine.apply(Update::Remove(gids.clone())).unwrap();
        }
        let inc_ids: Vec<SetIdx> = gids.iter().map(|g| self.inc_ids[g]).collect();
        self.inc.apply(Update::Remove(inc_ids)).unwrap();
        for g in gids {
            self.slots[g as usize] = None;
        }
    }

    fn compact(&mut self) {
        for engine in &mut self.sharded {
            engine.apply(Update::Compact).unwrap();
        }
        let remap = self.inc.apply(Update::Compact).unwrap().remap.unwrap();
        // Survivors follow the remap; tombstoned gids drop out of the map
        // for good (their `remap` entry is `None`).
        self.inc_ids = self
            .inc_ids
            .iter()
            .filter_map(|(&g, &i)| remap[i as usize].map(|ni| (g, ni)))
            .collect();
    }

    /// The fresh-build comparator: an engine over exactly the live raw
    /// sets, plus the dense-id → gid map (ascending, order-preserving).
    fn fresh(&self) -> (Engine, Vec<SetIdx>) {
        let gids = self.live_gids();
        let raw: Vec<Vec<String>> = gids
            .iter()
            .map(|&g| self.slots[g as usize].clone().unwrap())
            .collect();
        let engine = Engine::new(Collection::build(&raw, self.cfg.tokenization()), self.cfg)
            .expect("fresh rebuild");
        (engine, gids)
    }

    /// Runs one query on every incremental flavor and asserts each
    /// output byte-identical to the fresh rebuild.
    fn check_query(&self, elems: &[String], k: Option<usize>, floor: Option<f64>) {
        let (fresh, gids) = self.fresh();
        let r = fresh.collection().encode_set(elems);
        let mut query = fresh.query(&r);
        if let Some(k) = k {
            query = query.top_k(k);
        }
        if let Some(f) = floor {
            query = query.floor(f);
        }
        // Fresh results in the stable gid space.
        let want: Vec<(SetIdx, u64)> = query
            .run()
            .unwrap()
            .results
            .into_iter()
            .map(|(fid, score)| (gids[fid as usize], score.to_bits()))
            .collect();

        for engine in &self.sharded {
            let got: Vec<(SetIdx, u64)> = engine
                .search(elems, k, floor)
                .unwrap()
                .results
                .into_iter()
                .map(|(gid, score)| (gid, score.to_bits()))
                .collect();
            assert_eq!(
                got,
                want,
                "sharded({}) vs fresh rebuild, k={k:?} floor={floor:?}",
                engine.shard_count()
            );
        }

        // The unsharded incremental engine reports its own (possibly
        // compacted) ids; map them back to gids. The inc→gid map is
        // order-preserving, so tie order survives the translation.
        let gid_of: HashMap<SetIdx, SetIdx> = self.inc_ids.iter().map(|(&g, &i)| (i, g)).collect();
        let r_inc = self.inc.collection().encode_set(elems);
        let mut query = self.inc.query(&r_inc);
        if let Some(k) = k {
            query = query.top_k(k);
        }
        if let Some(f) = floor {
            query = query.floor(f);
        }
        let got: Vec<(SetIdx, u64)> = query
            .run()
            .unwrap()
            .results
            .into_iter()
            .map(|(iid, score)| (gid_of[&iid], score.to_bits()))
            .collect();
        assert_eq!(
            got, want,
            "Engine::apply vs fresh rebuild, k={k:?} floor={floor:?}"
        );
    }

    /// Batched discovery across all flavors vs the fresh rebuild.
    fn check_discover(&self, refs: &[Vec<String>]) {
        let (fresh, gids) = self.fresh();
        let encoded: Vec<_> = refs
            .iter()
            .map(|set| fresh.collection().encode_set(set))
            .collect();
        let want: Vec<(u32, SetIdx, u64)> = fresh
            .discover(&encoded)
            .pairs
            .into_iter()
            .map(|p| (p.r, gids[p.s as usize], p.score.to_bits()))
            .collect();
        for engine in &self.sharded {
            let got: Vec<(u32, SetIdx, u64)> = engine
                .discover(refs)
                .pairs
                .into_iter()
                .map(|p| (p.r, p.s, p.score.to_bits()))
                .collect();
            assert_eq!(
                got,
                want,
                "sharded({}) discover vs fresh rebuild",
                engine.shard_count()
            );
        }

        // The unsharded Engine::apply path too (ids mapped back to gids).
        let gid_of: HashMap<SetIdx, SetIdx> = self.inc_ids.iter().map(|(&g, &i)| (i, g)).collect();
        let encoded_inc: Vec<_> = refs
            .iter()
            .map(|set| self.inc.collection().encode_set(set))
            .collect();
        let got: Vec<(u32, SetIdx, u64)> = self
            .inc
            .discover(&encoded_inc)
            .pairs
            .into_iter()
            .map(|p| (p.r, gid_of[&p.s], p.score.to_bits()))
            .collect();
        assert_eq!(got, want, "Engine::apply discover vs fresh rebuild");
    }

    fn check_counts(&self) {
        let live = self.live_gids().len();
        for engine in &self.sharded {
            assert_eq!(
                engine.len(),
                live,
                "sharded({}) live count",
                engine.shard_count()
            );
            assert_eq!(engine.shard_sizes().iter().sum::<usize>(), live);
        }
        assert_eq!(self.inc.collection().live_len(), live);
    }
}

// The tentpole property: random interleavings of appends, removals,
// compactions, and queries — every query byte-identical to a fresh
// rebuild, across shard counts {1, 2, 7} and the unsharded
// `Engine::apply` path.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_update_sequence_is_equivalent_to_a_rebuild(seed in any::<u64>()) {
        let rng = &mut StdRng::seed_from_u64(seed);
        let mut h = Harness::new(rng);
        for _ in 0..12 {
            match rng.random_range(0..100u32) {
                0..=29 => {
                    let n = rng.random_range(1..=3usize);
                    h.append((0..n).map(|_| gen_set(rng)).collect());
                }
                30..=49 => {
                    let live = h.live_gids();
                    if live.is_empty() {
                        continue;
                    }
                    let n = rng.random_range(1..=3usize).min(live.len());
                    let mut gids: Vec<SetIdx> = (0..n)
                        .map(|_| live[rng.random_range(0..live.len())])
                        .collect();
                    // Duplicates are legal (idempotent removal).
                    if rng.random::<bool>() {
                        gids.dedup();
                    }
                    h.remove(gids);
                }
                50..=59 => h.compact(),
                _ => {
                    let elems = match h.live_gids().as_slice() {
                        // Query a live set's own elements half the time…
                        live if !live.is_empty() && rng.random::<bool>() => {
                            let g = live[rng.random_range(0..live.len())];
                            h.slots[g as usize].clone().unwrap()
                        }
                        // …or a fresh random reference.
                        _ => gen_set(rng),
                    };
                    let k = [None, Some(1), Some(3)][rng.random_range(0..3usize)];
                    let floor = [None, Some(0.0), Some(0.3)][rng.random_range(0..3usize)];
                    h.check_query(&elems, k, floor);
                }
            }
            h.check_counts();
        }
        // Always finish with a full sweep: plain search, ranked search,
        // and batched discovery.
        let elems = gen_set(rng);
        h.check_query(&elems, None, None);
        h.check_query(&elems, Some(5), Some(0.0));
        h.check_discover(&[gen_set(rng), gen_set(rng)]);
    }
}

/// Removing an id that was never assigned fails by name and mutates
/// nothing, on both engine flavors.
#[test]
fn remove_of_unknown_id_is_a_named_error_and_a_no_op() {
    let raw: Vec<Vec<String>> = (0..6).map(|i| vec![format!("w{i} shared0")]).collect();
    let cfg = EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.5,
        0.0,
    );

    let mut engine = Engine::new(Collection::build(&raw, cfg.tokenization()), cfg).unwrap();
    let err = engine.apply(Update::Remove(vec![2, 99])).unwrap_err();
    assert_eq!(err.to_string(), "no such set: 99");
    assert!(
        engine.collection().is_live(2),
        "validation precedes mutation"
    );

    let mut sharded = ShardedEngine::build(&raw, cfg, 3).unwrap();
    let err = sharded.apply(Update::Remove(vec![0, 77])).unwrap_err();
    assert_eq!(err.to_string(), "no such set: 77");
    assert_eq!(sharded.len(), 6);

    // After compaction the dropped gid is gone for good.
    sharded.apply(Update::Remove(vec![4])).unwrap();
    sharded.apply(Update::Compact).unwrap();
    let err = sharded.apply(Update::Remove(vec![4])).unwrap_err();
    assert_eq!(err.to_string(), "no such set: 4");
    // …while surviving gids are still addressable.
    assert_eq!(sharded.apply(Update::Remove(vec![5])).unwrap().removed, 1);
}

/// The service acceptance path: `POST /sets` / `DELETE /sets` mutate the
/// served engine and `GET /stats` + `GET /healthz` reflect the post-update
/// live set counts.
#[test]
fn service_stats_reflect_post_update_set_counts() {
    let raw: Vec<Vec<String>> = (0..10)
        .map(|i| vec![format!("w{} shared{}", i % 5, i % 3)])
        .collect();
    let cfg = EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.5,
        0.0,
    );
    let service = SearchService::new(ShardedEngine::build(&raw, cfg, 3).unwrap());

    let call = |method: &str, path: &str, body: &str| {
        let resp = service.handle(&Request::new(method, path, body.as_bytes().to_vec()));
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        (resp.status, doc)
    };
    let sets_of = |doc: &Json| doc.get("sets").and_then(Json::as_usize).unwrap();

    let (status, doc) = call("POST", "/sets", r#"{"sets": [["w0 shared0"], ["w9 w9"]]}"#);
    assert_eq!(status, 200, "{doc}");
    let appended = doc.get("appended").and_then(Json::as_array).unwrap();
    assert_eq!(appended.len(), 2);
    assert_eq!(
        appended[0].as_usize(),
        Some(10),
        "ids continue the numbering"
    );
    assert_eq!(sets_of(&doc), 12);

    let (status, doc) = call("DELETE", "/sets", r#"{"ids": [0, 10]}"#);
    assert_eq!(status, 200, "{doc}");
    assert_eq!(doc.get("removed").and_then(Json::as_usize), Some(2));
    assert_eq!(sets_of(&doc), 10);

    for path in ["/stats", "/healthz"] {
        let (status, doc) = call("GET", path, "");
        assert_eq!(status, 200);
        assert_eq!(sets_of(&doc), 10, "{path} must reflect updates");
    }

    // A removed set no longer matches searches; an appended one does.
    let (status, doc) = call(
        "POST",
        "/search",
        r#"{"reference": ["w9 w9"], "floor": 0.9}"#,
    );
    assert_eq!(status, 200, "{doc}");
    let hits: Vec<usize> = doc
        .get("results")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|r| r.get("set").and_then(Json::as_usize).unwrap())
        .collect();
    assert_eq!(hits, vec![11]);

    // Unknown ids are a named 404; /compact keeps counts and gids stable.
    let (status, doc) = call("DELETE", "/sets", r#"{"ids": [999]}"#);
    assert_eq!(status, 404);
    assert!(doc
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("no such set"));
    let (status, doc) = call("POST", "/compact", "");
    assert_eq!(status, 200);
    assert_eq!(sets_of(&doc), 10);
    let (_, doc) = call(
        "POST",
        "/search",
        r#"{"reference": ["w9 w9"], "floor": 0.9}"#,
    );
    let hits: Vec<usize> = doc
        .get("results")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|r| r.get("set").and_then(Json::as_usize).unwrap())
        .collect();
    assert_eq!(hits, vec![11], "global ids survive compaction");
}
