//! Differential harness for the QuerySpec migration.
//!
//! One [`QuerySpec`] must drive every execution layer identically:
//!
//! * **Spec path ≡ legacy builder path**: `engine.execute(&spec)` is
//!   byte-identical (ids, tie order, bit-equal scores, equal stats) to
//!   `engine.query(&r).top_k(k).floor(f).run()` — on fresh collections
//!   and after incremental updates — and `ShardedEngine::execute`
//!   reproduces it for shard counts {1, 2, 7}.
//! * **Encodings are total and validated**: the `core::wire` binary
//!   form and the server JSON form round-trip every spec; truncated or
//!   garbage payloads are named errors, never panics; an out-of-range
//!   floor is refused identically from the fluent builder, the spec
//!   constructor, JSON, the binary wire, and the CLI (the single
//!   validation point).
//! * **Deadlines truncate, never corrupt**: under an adversarially slow
//!   corpus a deadline-bearing query returns a well-formed subset
//!   flagged `timed_out` instead of scanning to the floor.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

use silkmoth::server::queryspec::{spec_from_json, spec_to_json};
use silkmoth::server::Json;
use silkmoth::{
    Collection, ConfigError, Engine, EngineConfig, QuerySpec, RelatednessMetric, ShardedEngine,
    SimilarityFunction, Update,
};
use silkmoth_core::wire::{decode_query_spec, encode_query_spec, WireError};

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn cfg(rng: &mut StdRng) -> EngineConfig {
    let metric = if rng.random::<bool>() {
        RelatednessMetric::Similarity
    } else {
        RelatednessMetric::Containment
    };
    let delta = [0.4, 0.6, 0.8][rng.random_range(0..3usize)];
    let alpha = [0.0, 0.3][rng.random_range(0..2usize)];
    EngineConfig::full(metric, SimilarityFunction::Jaccard, delta, alpha)
}

fn gen_element(rng: &mut StdRng) -> String {
    let n = rng.random_range(1..=4usize);
    (0..n)
        .map(|_| {
            if rng.random::<bool>() {
                format!("w{}", rng.random_range(0..12u32))
            } else {
                format!("shared{}", rng.random_range(0..4u32))
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn gen_set(rng: &mut StdRng) -> Vec<String> {
    let n = rng.random_range(1..=4usize);
    (0..n).map(|_| gen_element(rng)).collect()
}

/// A random spec over `reference` mixing every optional field except
/// deadlines (timing must not perturb an equivalence check).
fn gen_spec(rng: &mut StdRng, reference: Vec<String>) -> QuerySpec {
    let mut spec = QuerySpec::new(reference);
    if let Some(k) = [None, Some(1), Some(3), Some(10)][rng.random_range(0..4usize)] {
        spec = spec.with_top_k(k);
    }
    if let Some(f) = [None, Some(0.0), Some(0.35), Some(1.0)][rng.random_range(0..4usize)] {
        spec = spec.with_floor(f).expect("in range");
    }
    spec.with_stats(rng.random()).with_explain(rng.random())
}

/// Asserts `got` is byte-identical to `want`: same ids in the same
/// order, bit-for-bit equal scores.
fn assert_hits_identical(got: &[(u32, f64)], want: &[(u32, f64)], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: hit count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.0, w.0, "{ctx}: ids/tie order");
        assert_eq!(g.1.to_bits(), w.1.to_bits(), "{ctx}: score bits");
    }
}

/// One full cross-layer equivalence check: the spec against the legacy
/// fluent-builder path on the unsharded engine, and against every
/// sharded flavor. Gids equal raw input ids here (no compaction), so
/// the outputs are directly comparable.
fn check_spec(engine: &Engine, sharded: &[ShardedEngine], spec: &QuerySpec) {
    let r = engine.collection().encode_set(spec.reference());
    let mut legacy = engine.query(&r);
    if let Some(k) = spec.top_k() {
        legacy = legacy.top_k(k);
    }
    if let Some(f) = spec.floor() {
        legacy = legacy.floor(f);
    }
    let want = legacy.run().expect("spec floors are valid");
    let got = engine.execute(spec);
    assert_hits_identical(&got.hits, &want.results, "engine.execute vs builder");
    assert_eq!(got.stats, want.stats, "engine.execute vs builder stats");
    assert!(!got.timed_out);
    if spec.want_explain() {
        assert_eq!(got.explanations.len(), got.hits.len());
        for ((sid, score), (esid, expl)) in got.hits.iter().zip(&got.explanations) {
            assert_eq!(sid, esid);
            assert!(expl.related);
            assert!((expl.relatedness - score).abs() < 1e-9);
        }
    } else {
        assert!(got.explanations.is_empty());
    }
    for shard_engine in sharded {
        let ctx = format!("sharded({}).execute", shard_engine.shard_count());
        let sharded_out = shard_engine.execute(spec);
        assert_hits_identical(&sharded_out.hits, &got.hits, &ctx);
        assert!(!sharded_out.timed_out);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The tentpole property: one spec, five executors, identical bytes
    // — fresh and after incremental updates.
    #[test]
    fn spec_path_is_byte_identical_to_the_builder_path(seed in any::<u64>()) {
        let rng = &mut StdRng::seed_from_u64(seed);
        let config = cfg(rng);
        let n = rng.random_range(15..45usize);
        let mut raw: Vec<Vec<String>> = (0..n).map(|_| gen_set(rng)).collect();

        let tokenization = config.tokenization();
        let mut engine =
            Engine::new(Collection::build(&raw, tokenization), config).unwrap();
        let mut sharded: Vec<ShardedEngine> = SHARD_COUNTS
            .iter()
            .map(|&s| ShardedEngine::build(&raw, config, s).unwrap())
            .collect();

        for _ in 0..4 {
            let reference = if rng.random::<bool>() && !raw.is_empty() {
                raw[rng.random_range(0..raw.len())].clone()
            } else {
                gen_set(rng)
            };
            check_spec(&engine, &sharded, &gen_spec(rng, reference));
        }

        // Mutate every flavor identically — appends and removals only,
        // so unsharded ids and sharded gids stay equal and outputs stay
        // directly comparable (compaction equivalence incl. renumbering
        // is pinned by tests/update_equivalence.rs) — then re-check.
        let appended: Vec<Vec<String>> =
            (0..rng.random_range(1..=4usize)).map(|_| gen_set(rng)).collect();
        engine.apply(Update::Append(appended.clone())).unwrap();
        for s in &mut sharded {
            s.apply(Update::Append(appended.clone())).unwrap();
        }
        raw.extend(appended);
        let victim = rng.random_range(0..raw.len()) as u32;
        engine.apply(Update::Remove(vec![victim])).unwrap();
        for s in &mut sharded {
            s.apply(Update::Remove(vec![victim])).unwrap();
        }

        for _ in 0..3 {
            let reference = if rng.random::<bool>() {
                raw[rng.random_range(0..raw.len())].clone()
            } else {
                gen_set(rng)
            };
            check_spec(&engine, &sharded, &gen_spec(rng, reference));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Wire form: encode → decode is the identity, for specs of every
    // shape (including adversarial strings and deadlines).
    #[test]
    fn wire_roundtrip_is_the_identity(seed in any::<u64>()) {
        let rng = &mut StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let n = rng.random_range(0..5usize);
            let reference: Vec<String> = (0..n)
                .map(|_| match rng.random_range(0..4u32) {
                    0 => String::new(),
                    1 => "héllo wörld 🚀\n\"quoted\"".to_owned(),
                    _ => gen_element(rng),
                })
                .collect();
            let mut spec = gen_spec(rng, reference);
            if rng.random::<bool>() {
                spec = spec.with_deadline(Duration::from_micros(rng.random_range(0..10_000_000)));
            }
            let mut buf = Vec::new();
            encode_query_spec(&spec, &mut buf);
            prop_assert_eq!(decode_query_spec(&buf).expect("round-trip"), spec);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Wire form: every truncation of a valid payload and arbitrary
    // garbage decode to named errors, never panics or huge
    // allocations.
    #[test]
    fn wire_truncation_and_garbage_never_panic(seed in any::<u64>()) {
        let rng = &mut StdRng::seed_from_u64(seed);
        let reference = vec![gen_element(rng), gen_element(rng)];
        let spec = gen_spec(rng, reference)
            .with_deadline(Duration::from_millis(rng.random_range(0..1000)));
        let mut buf = Vec::new();
        encode_query_spec(&spec, &mut buf);
        for cut in 0..buf.len() {
            prop_assert!(decode_query_spec(&buf[..cut]).is_err(), "cut at {}", cut);
        }
        for _ in 0..64 {
            let len = rng.random_range(0..64usize);
            let garbage: Vec<u8> = (0..len).map(|_| rng.random_range(0..=u8::MAX)).collect();
            let _ = decode_query_spec(&garbage); // must not panic
        }
        // Flipping any single byte of a valid payload must never panic
        // (it may decode to a different valid spec; framing + CRC catch
        // corruption at the storage layer).
        for i in 0..buf.len() {
            let mut flipped = buf.clone();
            flipped[i] ^= 0xFF;
            let _ = decode_query_spec(&flipped);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // JSON form: `spec_from_json(spec_to_json(s)) == s` (deadlines at
    // millisecond granularity), and arbitrary JSON documents never
    // panic the parser.
    #[test]
    fn json_roundtrip_is_the_identity(seed in any::<u64>()) {
        let rng = &mut StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let n = rng.random_range(1..4usize);
            let reference: Vec<String> = (0..n).map(|_| gen_element(rng)).collect();
            let mut spec = gen_spec(rng, reference);
            if rng.random::<bool>() {
                spec = spec.with_deadline(Duration::from_millis(rng.random_range(0..60_000)));
            }
            let text = spec_to_json(&spec).to_string();
            let back = spec_from_json(&Json::parse(&text).unwrap()).expect("round-trip");
            prop_assert_eq!(back, spec);
        }
        // Garbage documents: parse errors or spec errors, never panics.
        for _ in 0..32 {
            let len = rng.random_range(0..40usize);
            let garbage: String = (0..len)
                .map(|_| *b"{}[]\",:x0.e-t\\ ".get(rng.random_range(0..15usize)).unwrap() as char)
                .collect();
            if let Ok(doc) = Json::parse(&garbage) {
                let _ = spec_from_json(&doc);
            }
        }
    }
}

/// The floor check lives in exactly one place — [`QuerySpec::with_floor`]
/// — so an out-of-range floor must fail with the *same* error from the
/// fluent builder, the spec constructor, the JSON decoder, and the
/// binary wire decoder. (The CLI entry point is covered by
/// `cli_floor_fails_like_every_other_entry_point` below.)
#[test]
fn floor_rejection_is_identical_across_entry_points() {
    let raw = vec![vec!["a b c".to_owned()], vec!["d e".to_owned()]];
    let config = EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.5,
        0.0,
    );
    let engine = Engine::new(Collection::build(&raw, config.tokenization()), config).unwrap();
    let r = engine.collection().encode_set(&["a b c"]);
    for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
        // 1. Spec constructor: the canonical error.
        let want = QuerySpec::new(vec!["a b c".into()])
            .with_floor(bad)
            .unwrap_err();
        assert!(matches!(want, ConfigError::FloorOutOfRange(_)), "{bad}");

        // 2. Fluent builder (run and iter).
        let from_run = engine.query(&r).floor(bad).run().unwrap_err();
        assert_eq!(from_run.to_string(), want.to_string(), "{bad}");
        let from_iter = engine.query(&r).floor(bad).iter().unwrap_err();
        assert_eq!(from_iter.to_string(), want.to_string(), "{bad}");

        // 3. Sharded raw-parameter search.
        let sharded = ShardedEngine::build(&raw, config, 2).unwrap();
        let from_sharded = sharded.search(&["a b c"], None, Some(bad)).unwrap_err();
        assert_eq!(from_sharded.to_string(), want.to_string(), "{bad}");

        // 4. JSON decoder (finite floors only — JSON has no NaN/inf).
        if bad.is_finite() {
            let body = format!(r#"{{"reference": ["a b c"], "floor": {bad}}}"#);
            let err = spec_from_json(&Json::parse(&body).unwrap()).unwrap_err();
            assert_eq!(err, want.to_string(), "{bad}");
        }

        // 5. Binary wire decoder: a hand-crafted payload with the bad
        // floor bits must be refused with the same inner error.
        let good = QuerySpec::new(vec!["a b c".into()])
            .with_floor(0.5)
            .unwrap();
        let mut buf = Vec::new();
        encode_query_spec(&good, &mut buf);
        let floor_bits_at = buf.len() - 8;
        buf[floor_bits_at..].copy_from_slice(&bad.to_bits().to_le_bytes());
        match decode_query_spec(&buf).unwrap_err() {
            WireError::InvalidSpec(inner) => {
                assert_eq!(inner.to_string(), want.to_string(), "{bad}")
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
    }
}

/// The CLI's `--floor` goes through the same spec constructor: an
/// out-of-range floor is a named error (exit 2) carrying the exact
/// `FloorOutOfRange` message, from the real binary.
#[test]
fn cli_floor_fails_like_every_other_entry_point() {
    let dir = std::env::temp_dir().join(format!("silkmoth-queryspec-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("input.sets");
    let refs = dir.join("refs.sets");
    std::fs::write(&input, "a b c|d e\nf g|h\n").unwrap();
    std::fs::write(&refs, "a b c\n").unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_silkmoth"))
        .args([
            "search",
            "--input",
            input.to_str().unwrap(),
            "--reference",
            refs.to_str().unwrap(),
            "--floor",
            "1.5",
        ])
        .output()
        .expect("silkmoth binary runs");
    assert_eq!(out.status.code(), Some(2), "bad floors are CLI errors");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let want = ConfigError::FloorOutOfRange(1.5).to_string();
    assert!(stderr.contains(&want), "stderr: {stderr}");

    // A valid floor (with a deadline, exercising --timeout-ms wiring)
    // succeeds through the same path.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_silkmoth"))
        .args([
            "search",
            "--input",
            input.to_str().unwrap(),
            "--reference",
            refs.to_str().unwrap(),
            "--floor",
            "0.5",
            "--top-k",
            "3",
            "--timeout-ms",
            "60000",
        ])
        .output()
        .expect("silkmoth binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).lines().count() >= 1,
        "the identical set clears any floor"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// An adversarially slow corpus (floor 0 admits everything, so the pass
/// must verify every set): a budgeted query returns a truncated,
/// well-formed, `timed_out` output instead of scanning to the floor —
/// and an unbudgeted one still returns everything.
#[test]
fn deadline_truncates_but_never_corrupts() {
    // ~900 sets of 6 elements each; with floor 0 every set is verified
    // (maximum matching per pair), which takes long enough to observe a
    // small budget expiring mid-pass.
    let raw: Vec<Vec<String>> = (0..900)
        .map(|i| {
            (0..6)
                .map(|j| {
                    format!(
                        "t{} t{} t{} t{} shared{}",
                        (i * 7 + j) % 23,
                        (i + 3 * j) % 17,
                        (i * 5 + j) % 13,
                        (i + j) % 11,
                        i % 5
                    )
                })
                .collect()
        })
        .collect();
    let config = EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.6,
        0.0,
    );
    let engine = Engine::new(Collection::build(&raw, config.tokenization()), config).unwrap();
    let base = QuerySpec::new(raw[0].clone()).with_floor(0.0).unwrap();

    let t0 = Instant::now();
    let full = engine.execute(&base);
    let full_elapsed = t0.elapsed();
    assert!(!full.timed_out);
    assert_eq!(full.hits.len(), raw.len(), "floor 0 relates everything");

    // A zero budget is guaranteed to expire before any verification.
    let zero = engine.execute(&base.clone().with_deadline(Duration::ZERO));
    assert!(zero.timed_out, "zero budget must time out");
    assert_eq!(zero.stats.verified, 0);
    assert_eq!(zero.hits.len(), zero.stats.results);

    // A small but nonzero budget: whatever was proven in time must be a
    // bit-identical subset of the full answer (well-formed truncation).
    let budget = Duration::from_millis(2);
    let partial = engine.execute(&base.clone().with_deadline(budget));
    assert_eq!(partial.hits.len(), partial.stats.results);
    for &(sid, score) in &partial.hits {
        let &(_, want) = full.hits.iter().find(|&&(s, _)| s == sid).unwrap();
        assert_eq!(score.to_bits(), want.to_bits());
    }
    // Only assert actual truncation when the full pass was slow enough
    // for the budget to bind (keeps the test robust on fast machines).
    if full_elapsed >= 10 * budget {
        assert!(partial.timed_out, "full pass took {full_elapsed:?}");
        assert!(partial.hits.len() < full.hits.len());
    }

    // The sharded path truncates just as safely.
    let sharded = ShardedEngine::build(&raw, config, 2).unwrap();
    let sharded_zero = sharded.execute(&base.with_deadline(Duration::ZERO));
    assert!(sharded_zero.timed_out);
    for &(gid, score) in &sharded_zero.hits {
        let &(_, want) = full.hits.iter().find(|&&(s, _)| s == gid).unwrap();
        assert_eq!(score.to_bits(), want.to_bits());
    }
}
