//! Integration tests for the owned, shareable engine API: builder
//! validation, the fluent query layer (top-k, floor, streaming), and
//! parallel batched discovery over external references.

use std::sync::Arc;

use silkmoth::{
    Collection, ConfigError, Engine, RelatednessMetric, SignatureScheme, SimilarityFunction,
    Tokenization,
};

/// A schema-matching workload with planted related clusters.
fn schema_corpus(n: usize) -> Vec<Vec<String>> {
    silkmoth::datagen::webtable_schemas(&silkmoth::SchemaConfig {
        num_sets: n,
        ..Default::default()
    })
}

fn schema_engine(n: usize, metric: RelatednessMetric, delta: f64) -> Engine {
    let corpus = schema_corpus(n);
    Engine::builder(Collection::build(&corpus, Tokenization::Whitespace))
        .metric(metric)
        .phi(SimilarityFunction::Jaccard)
        .delta(delta)
        .build()
        .unwrap()
}

#[test]
fn engine_is_lifetime_free_send_sync() {
    // Compile-time assertion: the engine can be stored in server state
    // ('static), moved across threads (Send), and shared (Sync).
    fn assert_send_sync_static<T: Send + Sync + 'static>() {}
    assert_send_sync_static::<Engine>();
    assert_send_sync_static::<Arc<Engine>>();
}

#[test]
fn engine_shared_behind_arc_serves_concurrent_queries() {
    let engine = Arc::new(schema_engine(120, RelatednessMetric::Similarity, 0.6));
    // Serial ground truth for three references.
    let rids = [0u32, 13, 47];
    let want: Vec<_> = rids
        .iter()
        .map(|&rid| engine.search(engine.collection().set(rid)).results)
        .collect();
    // The same engine, queried concurrently from worker threads — the
    // server-handler shape the old borrowed Engine<'a> could not express.
    let handles: Vec<_> = rids
        .iter()
        .map(|&rid| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let r = engine.collection().set(rid).clone();
                engine.query(&r).run().unwrap().results
            })
        })
        .collect();
    for (h, want) in handles.into_iter().zip(want) {
        assert_eq!(h.join().unwrap(), want);
    }
}

#[test]
fn builder_rejects_invalid_configurations() {
    let tiny = || Collection::build(&[vec!["a b", "c d"]], Tokenization::Whitespace);
    assert!(matches!(
        Engine::builder(tiny()).delta(0.0).build(),
        Err(ConfigError::DeltaOutOfRange(_))
    ));
    assert!(matches!(
        Engine::builder(tiny()).delta(1.2).build(),
        Err(ConfigError::DeltaOutOfRange(_))
    ));
    assert!(matches!(
        Engine::builder(tiny()).alpha(1.0).build(),
        Err(ConfigError::AlphaOutOfRange(_))
    ));
    // Whitespace tokenization cannot serve edit similarity.
    assert!(matches!(
        Engine::builder(tiny())
            .phi(SimilarityFunction::Eds { q: 2 })
            .alpha(0.7)
            .build(),
        Err(ConfigError::TokenizationMismatch { .. })
    ));
    // Footnote 11: the unweighted scheme with edit similarity needs
    // α > q/(q+1).
    let qgram = Collection::build(&[vec!["abcd", "bcde"]], Tokenization::QGram { q: 3 });
    assert!(matches!(
        Engine::builder(qgram)
            .phi(SimilarityFunction::Eds { q: 3 })
            .alpha(0.5)
            .scheme(SignatureScheme::Unweighted)
            .build(),
        Err(ConfigError::UnweightedEditNeedsAlpha { .. })
    ));
}

#[test]
fn query_floor_is_validated_not_clamped() {
    let engine = schema_engine(40, RelatednessMetric::Similarity, 0.7);
    let r = engine.collection().set(0).clone();
    for bad in [-0.5, 1.0001, f64::NAN, f64::NEG_INFINITY] {
        match engine.query(&r).floor(bad).run() {
            Err(ConfigError::FloorOutOfRange(v)) => {
                assert!(v.is_nan() || v == bad)
            }
            other => panic!("floor {bad} should be rejected, got {other:?}"),
        }
    }
    // Boundary values are legal.
    assert!(engine.query(&r).floor(0.0).run().is_ok());
    assert!(engine.query(&r).floor(1.0).run().is_ok());
}

#[test]
fn query_topk_ranks_and_breaks_ties_deterministically() {
    let engine = schema_engine(150, RelatednessMetric::Similarity, 0.9);
    for rid in [0u32, 9, 77] {
        let r = engine.collection().set(rid).clone();
        let all = engine.query(&r).floor(0.25).run().unwrap().results;
        let got = engine.query(&r).floor(0.25).top_k(5).run().unwrap().results;
        // Documented order: score descending, ties by ascending set id.
        let mut want = all.clone();
        want.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        want.truncate(5);
        assert_eq!(got, want, "rid={rid}");
    }
    // k = 0 yields nothing; huge k yields everything.
    let r = engine.collection().set(0).clone();
    assert!(engine
        .query(&r)
        .floor(0.3)
        .top_k(0)
        .run()
        .unwrap()
        .results
        .is_empty());
    let all = engine.query(&r).floor(0.3).run().unwrap().results.len();
    assert_eq!(
        engine
            .query(&r)
            .floor(0.3)
            .top_k(usize::MAX)
            .run()
            .unwrap()
            .results
            .len(),
        all
    );
}

#[test]
fn query_iter_drained_equals_run() {
    let engine = schema_engine(200, RelatednessMetric::Similarity, 0.5);
    for rid in [0u32, 31, 150] {
        let r = engine.collection().set(rid).clone();
        let run = engine.query(&r).run().unwrap();
        let mut iter = engine.query(&r).iter().unwrap();
        let mut streamed: Vec<(u32, f64)> = iter.by_ref().collect();
        streamed.sort_unstable_by_key(|&(sid, _)| sid);
        assert_eq!(streamed.len(), run.results.len(), "rid={rid}");
        for (a, b) in streamed.iter().zip(&run.results) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "scores bit-identical");
        }
        assert_eq!(iter.stats(), run.stats, "rid={rid}");
    }
}

#[test]
fn query_iter_early_termination_skips_verification_work() {
    let engine = schema_engine(200, RelatednessMetric::Similarity, 0.4);
    // Find a reference with several results so stopping early matters.
    let rid = (0..200u32)
        .find(|&rid| engine.search(engine.collection().set(rid)).results.len() >= 3)
        .expect("some reference has ≥3 related sets");
    let r = engine.collection().set(rid).clone();
    let full = engine.query(&r).run().unwrap();
    let mut iter = engine.query(&r).iter().unwrap();
    let first = iter.next().expect("at least one result");
    assert!(full.results.contains(&first));
    // Early termination: strictly fewer pairs verified than the full run.
    assert!(
        iter.stats().verified < full.stats.verified,
        "stopping early must save verification work ({} vs {})",
        iter.stats().verified,
        full.stats.verified
    );
}

/// The acceptance-criteria test: parallel batched discovery over
/// external references on a ≥200-set datagen workload is byte-identical
/// to serial — pairs, scores, and merged `PassStats`.
#[test]
fn discover_parallel_external_refs_identical_to_serial() {
    let corpus = schema_corpus(250);
    let collection = Arc::new(Collection::build(&corpus, Tokenization::Whitespace));
    // External references: re-encoded perturbations of corpus sets (every
    // other attribute of every fourth schema), so some match and some
    // don't.
    for metric in [
        RelatednessMetric::Similarity,
        RelatednessMetric::Containment,
    ] {
        let engine = Engine::builder(Arc::clone(&collection))
            .metric(metric)
            .phi(SimilarityFunction::Jaccard)
            .delta(0.5)
            .build()
            .unwrap();
        let refs: Vec<_> = corpus
            .iter()
            .step_by(4)
            .map(|set| {
                let strs: Vec<&str> = set.iter().step_by(2).map(String::as_str).collect();
                engine.collection().encode_set(&strs)
            })
            .collect();
        assert!(refs.len() >= 60);
        let serial = engine.discover(&refs);
        assert!(!serial.pairs.is_empty(), "workload must produce pairs");
        for threads in [2, 3, 4, 8] {
            let parallel = engine.discover_parallel(&refs, threads);
            assert_eq!(
                serial.pairs.len(),
                parallel.pairs.len(),
                "{metric:?} threads={threads}"
            );
            for (a, b) in serial.pairs.iter().zip(&parallel.pairs) {
                assert_eq!((a.r, a.s), (b.r, b.s), "{metric:?} threads={threads}");
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "scores bit-identical: {metric:?} threads={threads}"
                );
            }
            assert_eq!(serial.stats, parallel.stats, "{metric:?} threads={threads}");
        }
        // threads = 0 (auto) is also identical.
        let auto = engine.discover_parallel(&refs, 0);
        assert_eq!(serial.pairs.len(), auto.pairs.len());
        assert_eq!(serial.stats, auto.stats);
    }
}

#[test]
fn engine_outlives_its_builder_scope() {
    // The lifetime-free engine can be returned from a constructor whose
    // locals die — impossible with the old Engine<'a>.
    fn make() -> Engine {
        let corpus = schema_corpus(30);
        let collection = Collection::build(&corpus, Tokenization::Whitespace);
        Engine::builder(collection).delta(0.6).build().unwrap()
    }
    let engine = make();
    let out = engine.discover_self();
    assert_eq!(out.stats.results, out.pairs.len());
}
