//! Property tests for the supporting components: the corpus codec, the
//! collection builder's invariants, NN-search consistency, and the
//! signature generators' structural invariants on arbitrary inputs.

use proptest::prelude::*;
use silkmoth::core::{generate_signature, SigKind, SigParams};
use silkmoth::{Collection, InvertedIndex, SignatureScheme, Tokenization};

fn any_corpus() -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(proptest::collection::vec("[a-e ]{0,12}", 0..5), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_codec_roundtrip_any_corpus(corpus in any_corpus(), qgram in any::<bool>()) {
        let tok = if qgram { Tokenization::QGram { q: 2 } } else { Tokenization::Whitespace };
        let c = Collection::build(&corpus, tok);
        let back = silkmoth::collection::codec::decode(&silkmoth::collection::codec::encode(&c)).unwrap();
        prop_assert_eq!(back.len(), c.len());
        prop_assert_eq!(back.tokenization(), c.tokenization());
        for (a, b) in c.sets().iter().zip(back.sets()) {
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(back.dict().len(), c.dict().len());
    }

    #[test]
    fn prop_collection_invariants(corpus in any_corpus(), qgram in any::<bool>()) {
        let tok = if qgram { Tokenization::QGram { q: 3 } } else { Tokenization::Whitespace };
        let c = Collection::build(&corpus, tok);
        let index = InvertedIndex::build(&c);
        for set in c.sets() {
            for e in set.elements.iter() {
                // Tokens sorted, distinct, and within the dictionary.
                prop_assert!(e.tokens.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(e.tokens.iter().all(|&t| (t as usize) < c.dict().len()));
                // Every chunk id is one of the element's tokens.
                for &ch in e.chunks.iter() {
                    prop_assert!(e.tokens.binary_search(&ch).is_ok());
                }
            }
        }
        // Dictionary frequency == inverted list length, and ids are in
        // decreasing frequency order.
        for t in 0..c.dict().len() as u32 {
            prop_assert_eq!(c.dict().frequency(t) as usize, index.cost(t));
            if t > 0 {
                prop_assert!(c.dict().frequency(t - 1) >= c.dict().frequency(t));
            }
        }
    }

    #[test]
    fn prop_signature_structure(
        corpus in proptest::collection::vec(
            proptest::collection::vec("[a-d]( [a-d]){0,4}", 1..5), 1..6),
        delta in 0.2f64..0.95,
        alpha in prop_oneof![Just(0.0), 0.3f64..0.9],
        scheme in prop_oneof![
            Just(SignatureScheme::Unweighted),
            Just(SignatureScheme::Weighted),
            Just(SignatureScheme::CombinedUnweighted),
            Just(SignatureScheme::Skyline),
            Just(SignatureScheme::Dichotomy),
        ],
    ) {
        let c = Collection::build(&corpus, Tokenization::Whitespace);
        let index = InvertedIndex::build(&c);
        let r = c.set(0);
        let theta = delta * r.len() as f64;
        let sig = generate_signature(
            r,
            scheme,
            SigParams { theta, alpha, kind: SigKind::Jaccard },
            &index,
        );
        prop_assert_eq!(sig.elems.len(), r.len());
        for (se, re) in sig.elems.iter().zip(r.elements.iter()) {
            // Signature tokens are a sorted subset of the element's tokens.
            prop_assert!(se.tokens.windows(2).all(|w| w[0] < w[1]));
            for t in &se.tokens {
                prop_assert!(re.tokens.binary_search(t).is_ok());
            }
            prop_assert!(se.units <= re.tokens.len());
            prop_assert!((0.0..=1.0).contains(&se.raw_bound));
            // Saturated elements hold at least the sim-thresh cap.
            if se.saturated {
                let cap = silkmoth::core::signature::sim_thresh_cap(
                    re.tokens.len(), re.tokens.len(), alpha, SigKind::Jaccard);
                prop_assert!(cap.is_some());
                prop_assert!(se.units >= cap.unwrap());
            }
        }
        // Non-degenerate signatures satisfy the validity sum.
        if !sig.degenerate && sig.check_prunable {
            prop_assert!(sig.sum_bound < theta);
        }
    }

    #[test]
    fn prop_encode_set_consistent_with_build(
        corpus in proptest::collection::vec(
            proptest::collection::vec("[a-c]( [a-c]){0,3}", 1..4), 1..5),
    ) {
        // Encoding a set that also exists in the corpus yields the exact
        // same token ids as the built set.
        let c = Collection::build(&corpus, Tokenization::Whitespace);
        for (sid, raw_set) in corpus.iter().enumerate() {
            let strs: Vec<&str> = raw_set.iter().map(String::as_str).collect();
            let encoded = c.encode_set(&strs);
            let built = c.set(sid as u32);
            prop_assert_eq!(encoded.len(), built.len());
            for (a, b) in encoded.elements.iter().zip(built.elements.iter()) {
                prop_assert_eq!(&a.tokens, &b.tokens);
            }
        }
    }
}
